//! The causal log (§4.3) and its manager.
//!
//! Every task keeps:
//! - a **main-thread log** of determinants (order, timers, timestamps, RPCs,
//!   external responses, …);
//! - one **output-channel log** per output channel, recording the network
//!   thread's nondeterministic flush decisions ([`Determinant::BufferFlush`]);
//! - a **replicated store** of upstream tasks' logs, received piggybacked on
//!   input buffers.
//!
//! Whenever a buffer is dispatched downstream, a **delta** piggybacks on it,
//! containing all entries of the main log and the output-queue logs appended
//! since the last dispatch *on that channel*, plus — when the determinant
//! sharing depth (DSD) exceeds one — the deltas of replicated upstream logs
//! within range. The downstream task appends these to its replicated store
//! *before* the buffer's records affect its state, preserving
//! `Depend(e) ⊆ Log(e)` (the always-no-orphans property, Eq. 2 of the paper).
//!
//! Entries carry dense per-log sequence numbers, which makes delta ingestion
//! idempotent (diamond topologies deliver the same determinants along several
//! paths) and lets recovery merge partial replicas from multiple downstream
//! survivors by simply taking the longest.

use crate::determinant::Determinant;
use crate::{ChannelId, EpochId, TaskId};
use bytes::Bytes;
use clonos_storage::codec::{ByteReader, ByteWriter, CodecError};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Log identifier within a task: the main-thread log or an output-channel log.
pub const MAIN_LOG: u32 = 0;

/// Wire-only tag for a run-length-compressed sequence of `Order`
/// determinants inside a delta (§9 of the paper lists compressed causal-log
/// data structures as future work; `Order` entries dominate the log under
/// steady load, and consecutive buffers from the same channel are common).
const WIRE_ORDER_RUN: u8 = 0x3F;

#[inline]
pub fn channel_log(ch: ChannelId) -> u32 {
    ch + 1
}

/// Arena chunks are sealed (frozen into shareable [`Bytes`]) once the active
/// tail grows past this size; an entry is always encoded entirely within one
/// chunk so delta collection can bulk-copy whole ranges.
const ARENA_CHUNK_BYTES: usize = 4096;

/// Per-entry metadata in an [`EpochLog`]'s arena index. `index[i]` describes
/// the entry with sequence number `base_seq + i`.
#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    epoch: EpochId,
    /// Logical arena offset of the entry's first byte (its epoch varint).
    /// Logical offsets are monotone over the log's lifetime; truncation only
    /// retires dead prefixes, it never renumbers.
    offset: u64,
    /// Width of the epoch varint prefix.
    epoch_len: u8,
    /// Width of the encoded determinant (tag + payload).
    det_len: u32,
    /// `Some(channel)` iff the determinant is `Order { channel }` — delta
    /// collection detects run-length-compressible runs from the index alone,
    /// without decoding.
    order_channel: Option<u32>,
}

impl IndexEntry {
    #[inline]
    fn end(&self) -> u64 {
        self.offset + self.epoch_len as u64 + self.det_len as u64
    }
}

/// A sealed arena chunk: immutable encoded entries starting at logical
/// offset `start`.
#[derive(Clone, Debug)]
struct Chunk {
    start: u64,
    bytes: Bytes,
}

impl Chunk {
    #[inline]
    fn end(&self) -> u64 {
        self.start + self.bytes.len() as u64
    }
}

/// An epoch-segmented, sequence-numbered determinant log.
///
/// Entries are appended with nondecreasing epochs; truncation drops whole
/// epoch prefixes (safe once a checkpoint made them stable).
///
/// Storage is an **encoded arena**: `append` serializes the entry
/// (`varint(epoch)` followed by the determinant encoding — exactly the
/// delta wire format for an uncompressed entry) into an append-only chunked
/// byte arena, and keeps a per-entry [`IndexEntry`] carrying the epoch,
/// offsets, and the `Order`-channel needed for run detection. Everything
/// else derives from the index:
///
/// - delta collection bulk-copies contiguous arena ranges instead of
///   re-encoding each determinant per output channel;
/// - `encoded_bytes` accounting sums indexed lengths (no re-encode);
/// - truncation pops index entries and retires whole dead chunks;
/// - `get`/`since` decode on demand (cold paths: tests, snapshots, replay
///   installation).
///
/// Invariants: index offsets are strictly increasing and contiguous
/// (`index[i].end() == index[i+1].offset`); an entry never spans chunks;
/// live bytes are covered by `sealed` chunks plus the `active` tail, with
/// `active` starting at `active_start == sealed.back().end()` (when sealed
/// chunks exist).
#[derive(Clone, Debug, Default)]
pub struct EpochLog {
    base_seq: u64,
    index: VecDeque<IndexEntry>,
    sealed: VecDeque<Chunk>,
    active: ByteWriter,
    /// Logical offset of `active`'s first byte.
    active_start: u64,
    encoded_bytes: u64,
    /// Times this replica resynchronized over a forward gap (diagnostics).
    gap_resyncs: u64,
}

impl EpochLog {
    pub fn new() -> EpochLog {
        EpochLog::default()
    }

    /// Sequence number the next appended entry will get.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.index.len() as u64
    }

    #[inline]
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total encoded size of resident determinants (determinant-pool
    /// accounting; excludes the epoch prefixes).
    pub fn encoded_bytes(&self) -> u64 {
        self.encoded_bytes
    }

    /// Logical offset one past the last arena byte.
    #[inline]
    fn next_offset(&self) -> u64 {
        self.active_start + self.active.len() as u64
    }

    pub fn append(&mut self, epoch: EpochId, det: Determinant) -> u64 {
        if let Some(last) = self.index.back() {
            debug_assert!(epoch >= last.epoch, "epochs must be nondecreasing");
        }
        let seq = self.next_seq();
        if self.active.len() >= ARENA_CHUNK_BYTES {
            self.seal_active();
        }
        let offset = self.next_offset();
        self.active.put_varint(epoch);
        let epoch_len = (self.next_offset() - offset) as u8;
        det.encode(&mut self.active);
        let det_len = (self.next_offset() - offset) as u32 - epoch_len as u32;
        let order_channel = match det {
            Determinant::Order { channel } => Some(channel),
            _ => None,
        };
        self.index.push_back(IndexEntry { epoch, offset, epoch_len, det_len, order_channel });
        self.encoded_bytes += det_len as u64;
        seq
    }

    fn seal_active(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let frozen = self.active.take_frozen();
        let start = self.active_start;
        self.active_start += frozen.len() as u64;
        self.sealed.push_back(Chunk { start, bytes: frozen });
    }

    /// The encoded bytes of one indexed entry (`varint(epoch)` + determinant).
    fn entry_bytes(&self, e: &IndexEntry) -> &[u8] {
        let len = (e.end() - e.offset) as usize;
        if e.offset >= self.active_start {
            let s = (e.offset - self.active_start) as usize;
            &self.active.as_slice()[s..s + len]
        } else {
            let i = self.sealed.partition_point(|c| c.end() <= e.offset);
            let c = &self.sealed[i];
            let s = (e.offset - c.start) as usize;
            &c.bytes[s..s + len]
        }
    }

    fn decode_entry(&self, e: &IndexEntry) -> Determinant {
        let bytes = self.entry_bytes(e);
        let mut r = ByteReader::new(&bytes[e.epoch_len as usize..]);
        // clonos-lint: allow(recovery-panic, reason = "arena bytes were encoded by this process; a decode failure is memory corruption, not a protocol fault to escalate")
        Determinant::decode(&mut r).expect("arena entry decodes")
    }

    /// Entry at absolute sequence number `seq`, if resident (decoded from
    /// the arena).
    pub fn get(&self, seq: u64) -> Option<(EpochId, Determinant)> {
        let idx = seq.checked_sub(self.base_seq)? as usize;
        let e = self.index.get(idx)?;
        Some((e.epoch, self.decode_entry(e)))
    }

    /// Iterate entries with `seq >= from`, yielding `(seq, epoch, det)`
    /// decoded from the arena.
    pub fn since(&self, from: u64) -> impl Iterator<Item = (u64, EpochId, Determinant)> + '_ {
        let start = from.saturating_sub(self.base_seq) as usize;
        self.index
            .iter()
            .enumerate()
            .skip(start)
            .map(move |(i, e)| (self.base_seq + i as u64, e.epoch, self.decode_entry(e)))
    }

    /// Drop all entries belonging to epochs `<= epoch`. Returns dropped count.
    pub fn truncate_through(&mut self, epoch: EpochId) -> usize {
        let mut dropped = 0;
        while let Some(&front) = self.index.front() {
            if front.epoch > epoch {
                break;
            }
            self.index.pop_front();
            self.encoded_bytes -= front.det_len as u64;
            self.base_seq += 1;
            dropped += 1;
        }
        self.retire_dead_chunks();
        dropped
    }

    /// Release arena chunks that hold no live entry. Bytes of truncated
    /// entries inside the active tail (or a partially-live front chunk)
    /// remain as slack until the chunk itself dies.
    fn retire_dead_chunks(&mut self) {
        match self.index.front() {
            None => {
                // No live entries: the whole arena is dead. Restart the
                // active buffer at the current logical offset so numbering
                // stays monotone.
                self.sealed.clear();
                self.active_start = self.next_offset();
                self.active.clear();
            }
            Some(front) => {
                while let Some(c) = self.sealed.front() {
                    if c.end() > front.offset {
                        break;
                    }
                    self.sealed.pop_front();
                }
            }
        }
    }

    /// Idempotent insert of an entry with a known sequence number.
    ///
    /// Returns `Ok(true)` if appended, `Ok(false)` if it was a duplicate or
    /// pre-truncation entry, and an error on a sequence gap — except that an
    /// *empty* log resynchronizes its base to the incoming sequence (the
    /// pre-gap entries are stable and were truncated everywhere).
    pub fn ingest(&mut self, seq: u64, epoch: EpochId, det: Determinant) -> Result<bool, DeltaError> {
        if self.is_empty() && seq > self.base_seq {
            // Resync: see module docs — only reachable when the skipped
            // prefix is already stable.
            self.base_seq = seq;
        }
        let next = self.next_seq();
        if seq < next {
            return Ok(false); // duplicate path (diamond) or truncated
        }
        if seq > next {
            // Forward gap. Two legitimate causes: (a) the sender truncated
            // entries this replica still holds (checkpoint-complete
            // notifications race across tasks), or (b) the sender is a
            // recovered task whose *forwarded* upstream-log cursors were
            // repackaged by replay pacing (DSD > 1). Either way the invariant
            // is safe: dependence on an event only ever arrives together
            // with its determinant (piggybacked on the same buffer), so a
            // receiver that never got entries `next..seq` cannot depend on
            // them — Depend(e) ⊆ Log(e) is preserved. Resync: drop the stale
            // resident prefix (it remains contiguous elsewhere or is
            // checkpoint-stable) and continue from the incoming sequence.
            self.encoded_bytes = 0;
            self.index.clear();
            self.retire_dead_chunks();
            self.base_seq = seq;
            self.gap_resyncs += 1;
        }
        self.append(epoch, det);
        Ok(true)
    }

    /// Full copy of resident entries, `(seq, epoch, det)` triplets.
    pub fn snapshot(&self) -> Vec<(u64, EpochId, Determinant)> {
        self.since(self.base_seq).collect()
    }

    /// Length of a maximal run of same-epoch, same-channel `Order` entries
    /// starting at index position `i`, counting at most `cap` (0 when the
    /// entry is not an `Order`). Index-only — no decoding.
    fn run_len_at(&self, i: usize, cap: usize) -> usize {
        let Some(channel) = self.index[i].order_channel else {
            return 0;
        };
        let epoch = self.index[i].epoch;
        let mut run = 1;
        while run < cap
            && i + run < self.index.len()
            && self.index[i + run].epoch == epoch
            && self.index[i + run].order_channel == Some(channel)
        {
            run += 1;
        }
        run
    }

    /// Append the wire encoding of entries `seq >= from` to `w`: maximal
    /// runs (>= 3) of same-channel same-epoch `Order` entries are emitted
    /// as [`WIRE_ORDER_RUN`] items; everything between runs is bulk-copied
    /// straight out of the arena (the entries are already stored in wire
    /// format). Returns the number of logical entries written.
    fn encode_since(&self, from: u64, w: &mut ByteWriter, stats: &mut CausalLogStats) -> u64 {
        let n = self.index.len();
        let mut i = from.saturating_sub(self.base_seq) as usize;
        let emitted = (n - i.min(n)) as u64;
        while i < n {
            let run = self.run_len_at(i, usize::MAX);
            if run >= 3 {
                let e = &self.index[i];
                w.put_varint(e.epoch);
                w.put_u8(WIRE_ORDER_RUN);
                // clonos-lint: allow(recovery-panic, reason = "run_len_at only forms runs over entries whose order_channel is Some")
                w.put_varint(e.order_channel.expect("run entries are Order") as u64);
                w.put_varint(run as u64);
                i += run;
                continue;
            }
            // Contiguous non-run span: extend until the next compressible
            // run, then copy its arena bytes wholesale.
            let span_start = i;
            i += 1;
            while i < n && self.run_len_at(i, 3) < 3 {
                i += 1;
            }
            let a = self.index[span_start].offset;
            let b = self.index[i - 1].end();
            self.copy_arena_range(a, b, w);
            stats.delta_bytes_memcpy += b - a;
        }
        emitted
    }

    /// Copy the logical arena range `[a, b)` into `w`, chunk by chunk.
    fn copy_arena_range(&self, mut a: u64, b: u64, w: &mut ByteWriter) {
        let mut ci = self.sealed.partition_point(|c| c.end() <= a);
        while a < b {
            match self.sealed.get(ci) {
                Some(c) if c.start <= a => {
                    let end = c.end().min(b);
                    w.put_raw(&c.bytes[(a - c.start) as usize..(end - c.start) as usize]);
                    a = end;
                    ci += 1;
                }
                _ => {
                    debug_assert!(a >= self.active_start, "live range below active tail");
                    let s = (a - self.active_start) as usize;
                    let e = (b - self.active_start) as usize;
                    w.put_raw(&self.active.as_slice()[s..e]);
                    a = b;
                }
            }
        }
    }
}

/// Errors during delta exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    SequenceGap { expected: u64, got: u64 },
    Codec(CodecError),
}

impl From<CodecError> for DeltaError {
    fn from(e: CodecError) -> Self {
        DeltaError::Codec(e)
    }
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SequenceGap { expected, got } => {
                write!(f, "determinant sequence gap: expected {expected}, got {got}")
            }
            DeltaError::Codec(e) => write!(f, "delta codec error: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The full set of logs describing one task: main + per-output-channel.
#[derive(Clone, Debug, Default)]
pub struct TaskLog {
    pub main: EpochLog,
    pub channels: Vec<EpochLog>,
}

impl TaskLog {
    fn new(num_channels: usize) -> TaskLog {
        TaskLog { main: EpochLog::new(), channels: vec![EpochLog::new(); num_channels] }
    }

    fn log(&self, id: u32) -> Option<&EpochLog> {
        if id == MAIN_LOG {
            Some(&self.main)
        } else {
            self.channels.get((id - 1) as usize)
        }
    }

    fn log_mut(&mut self, id: u32) -> &mut EpochLog {
        if id == MAIN_LOG {
            &mut self.main
        } else {
            let idx = (id - 1) as usize;
            if idx >= self.channels.len() {
                self.channels.resize_with(idx + 1, EpochLog::new);
            }
            &mut self.channels[idx]
        }
    }

    fn log_ids(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(MAIN_LOG).chain((0..self.channels.len() as u32).map(channel_log))
    }

    fn num_logs(&self) -> usize {
        1 + self.channels.len()
    }

    pub fn encoded_bytes(&self) -> u64 {
        self.main.encoded_bytes() + self.channels.iter().map(|c| c.encoded_bytes()).sum::<u64>()
    }

    pub fn truncate_through(&mut self, epoch: EpochId) {
        self.main.truncate_through(epoch);
        for c in &mut self.channels {
            c.truncate_through(epoch);
        }
    }
}

/// One log inside a [`TaskLogSnapshot`]: `(log_id, base_seq, entries)`.
pub type SnapshotLog = (u32, u64, Vec<(EpochId, Determinant)>);

/// A portable full copy of a task's logs, exchanged during recovery
/// (step 3 of the protocol: "Retrieve Determinant Log").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskLogSnapshot {
    pub logs: Vec<SnapshotLog>,
}

impl TaskLogSnapshot {
    pub fn is_empty(&self) -> bool {
        self.logs.iter().all(|(_, _, es)| es.is_empty())
    }

    /// Merge another replica in: per log, keep whichever copy extends
    /// further. Correct because all replicas of a log are prefixes of the
    /// same sequence (FIFO channels + dense sequence numbers).
    pub fn merge(&mut self, other: &TaskLogSnapshot) {
        for (id, obase, oentries) in &other.logs {
            match self.logs.iter_mut().find(|(i, _, _)| i == id) {
                None => self.logs.push((*id, *obase, oentries.clone())),
                Some((_, base, entries)) => {
                    let my_end = *base + entries.len() as u64;
                    let their_end = *obase + oentries.len() as u64;
                    if their_end > my_end {
                        *base = *obase;
                        *entries = oentries.clone();
                    }
                }
            }
        }
    }

    pub fn total_entries(&self) -> usize {
        self.logs.iter().map(|(_, _, e)| e.len()).sum()
    }

    /// Look up one log's `(base_seq, entries)` by id.
    pub fn for_log(&self, id: u32) -> Option<(u64, &[(EpochId, Determinant)])> {
        self.logs.iter().find(|(i, _, _)| *i == id).map(|(_, b, e)| (*b, e.as_slice()))
    }
}

/// A replicated upstream log held at a downstream task.
#[derive(Clone, Debug)]
struct Replica {
    /// Minimum hop distance from the origin task to the holder.
    hops: u32,
    log: TaskLog,
}

/// Encoded piggyback delta (attached to every outgoing buffer).
pub type LogDelta = Bytes;

/// Statistics for overhead accounting (§7.3, §7.5, E9).
#[derive(Clone, Copy, Debug, Default)]
pub struct CausalLogStats {
    pub determinants_recorded: u64,
    pub delta_bytes_shipped: u64,
    pub delta_entries_shipped: u64,
    pub deltas_ingested: u64,
    pub entries_ingested: u64,
    /// Logical `Order` entries shipped inside run-length-compressed wire
    /// items (the §9 compression extension).
    pub order_entries_compressed: u64,
    /// Entries serialized into a log arena (each exactly once, at append).
    pub entries_encoded: u64,
    /// Entries serialized again at delta-collection time. The arena path
    /// ships stored bytes, so this stays 0; it exists to catch regressions
    /// that reintroduce per-channel re-encoding.
    pub entries_reencoded: u64,
    /// Delta payload bytes bulk-copied out of log arenas (as opposed to the
    /// freshly written framing/run varints).
    pub delta_bytes_memcpy: u64,
}

/// Former name of [`CausalLogStats`], kept for downstream callers.
pub type LogStats = CausalLogStats;

/// Replay source installed on a recovering task: the merged snapshot of its
/// predecessor's logs, consumed as the task re-executes.
#[derive(Debug, Default)]
struct ReplaySource {
    main: VecDeque<(EpochId, Determinant)>,
    channels: BTreeMap<ChannelId, VecDeque<(EpochId, Determinant)>>,
}

/// Per-task causal log manager: owns the task's logs, the replicated store,
/// per-output-channel delta cursors, and replay state during recovery.
#[derive(Debug)]
pub struct CausalLogManager {
    task: TaskId,
    dsd: u32,
    epoch: EpochId,
    own: TaskLog,
    replicated: BTreeMap<TaskId, Replica>,
    /// cursors[channel] maps (origin, log_id) -> next seq to ship.
    cursors: Vec<BTreeMap<(TaskId, u32), u64>>,
    replay: Option<ReplaySource>,
    pub stats: CausalLogStats,
}

impl CausalLogManager {
    pub fn new(task: TaskId, num_out_channels: usize, dsd: u32) -> CausalLogManager {
        CausalLogManager {
            task,
            dsd,
            epoch: 0,
            own: TaskLog::new(num_out_channels),
            replicated: BTreeMap::new(),
            cursors: vec![BTreeMap::new(); num_out_channels],
            replay: None,
            stats: CausalLogStats::default(),
        }
    }

    pub fn task(&self) -> TaskId {
        self.task
    }

    pub fn dsd(&self) -> u32 {
        self.dsd
    }

    pub fn epoch(&self) -> EpochId {
        self.epoch
    }

    /// Advance to a new epoch (a checkpoint barrier passed through the task).
    pub fn set_epoch(&mut self, epoch: EpochId) {
        debug_assert!(epoch >= self.epoch);
        self.epoch = epoch;
    }

    /// Whether causal logging is active at all (DSD = 0 disables it — the
    /// at-least-once configuration of §5.4).
    pub fn enabled(&self) -> bool {
        self.dsd > 0
    }

    // ----- recording ---------------------------------------------------

    /// Append a main-thread determinant.
    pub fn record(&mut self, det: Determinant) {
        if !self.enabled() {
            return;
        }
        debug_assert!(det.is_main_thread());
        self.stats.determinants_recorded += 1;
        self.stats.entries_encoded += 1;
        self.own.main.append(self.epoch, det);
    }

    /// Append an output-queue flush determinant for `channel`.
    pub fn record_flush(&mut self, channel: ChannelId, size: u32, records: u32) {
        if !self.enabled() {
            return;
        }
        self.stats.determinants_recorded += 1;
        self.stats.entries_encoded += 1;
        self.own.log_mut(channel_log(channel)).append(self.epoch, Determinant::BufferFlush {
            size,
            records,
        });
    }

    /// Resident determinant bytes (own + replicated) — §7.5 memory metric.
    pub fn resident_bytes(&self) -> u64 {
        self.own.encoded_bytes()
            + self.replicated.values().map(|r| r.log.encoded_bytes()).sum::<u64>()
    }

    // ----- delta exchange ----------------------------------------------

    /// Collect the piggyback delta for an outgoing buffer on `channel`,
    /// advancing that channel's cursors. Includes this task's own logs
    /// (orig hops 0) and any replicated logs with `hops + 1 <= dsd`.
    pub fn collect_delta(&mut self, channel: ChannelId) -> LogDelta {
        let mut w = ByteWriter::new();
        if !self.enabled() {
            return w.freeze();
        }
        let ch = channel as usize;
        debug_assert!(ch < self.cursors.len());
        let mut origins: u64 = 0;
        let mut body = ByteWriter::new();

        // Own logs always ship (receiver is 1 hop from us).
        Self::encode_origin_delta(
            &mut body,
            self.task,
            0,
            &self.own,
            &mut self.cursors[ch],
            &mut self.stats,
        );
        origins += 1;

        // Forward replicated upstream logs still within sharing depth.
        if self.dsd > 1 {
            for (&origin, replica) in &self.replicated {
                if replica.hops + 1 > self.dsd {
                    continue;
                }
                Self::encode_origin_delta(
                    &mut body,
                    origin,
                    replica.hops,
                    &replica.log,
                    &mut self.cursors[ch],
                    &mut self.stats,
                );
                origins += 1;
            }
        }

        w.put_varint(origins);
        w.put_raw(body.as_slice());
        let delta = w.freeze();
        self.stats.delta_bytes_shipped += delta.len() as u64;
        delta
    }

    /// Encode one origin's per-log deltas. The per-log entry bytes come
    /// straight out of each log's encoded arena ([`EpochLog::encode_since`]);
    /// only the framing varints and compressed-run items are written fresh.
    fn encode_origin_delta(
        w: &mut ByteWriter,
        origin: TaskId,
        hops_at_sender: u32,
        logs: &TaskLog,
        cursors: &mut BTreeMap<(TaskId, u32), u64>,
        stats: &mut CausalLogStats,
    ) {
        w.put_varint(origin);
        w.put_varint(hops_at_sender as u64);
        w.put_varint(logs.num_logs() as u64);
        for id in logs.log_ids() {
            // clonos-lint: allow(recovery-panic, reason = "id was just yielded by log_ids() on the same immutable borrow")
            let log = logs.log(id).expect("log id from log_ids");
            let cursor = cursors.entry((origin, id)).or_insert(log.base_seq());
            let from = (*cursor).max(log.base_seq());
            w.put_varint(id as u64);
            w.put_varint(from);
            w.put_varint(log.next_seq() - from);
            let shipped = log.encode_since(from, w, stats);
            *cursor = from + shipped;
            stats.delta_entries_shipped += shipped;
        }
    }

    /// Ingest a delta received piggybacked on an input buffer. Must be called
    /// *before* the buffer's records are processed.
    pub fn ingest_delta(&mut self, delta: &[u8]) -> Result<u64, DeltaError> {
        if !self.enabled() || delta.is_empty() {
            return Ok(0);
        }
        let mut r = ByteReader::new(delta);
        let origins = r.get_varint()?;
        let mut added = 0u64;
        for _ in 0..origins {
            let origin = r.get_varint()?;
            let hops_at_sender = r.get_varint()? as u32;
            let nlogs = r.get_varint()?;
            let replica = self
                .replicated
                .entry(origin)
                .or_insert_with(|| Replica { hops: hops_at_sender + 1, log: TaskLog::default() });
            replica.hops = replica.hops.min(hops_at_sender + 1);
            for _ in 0..nlogs {
                let id = r.get_varint()? as u32;
                let from = r.get_varint()?;
                let count = r.get_varint()?;
                let log = replica.log.log_mut(id);
                let mut logical = 0u64;
                while logical < count {
                    let epoch = r.get_varint()?;
                    let tag = r.get_u8()?;
                    if tag == WIRE_ORDER_RUN {
                        let channel = r.get_varint()? as u32;
                        let run = r.get_varint()?;
                        for _ in 0..run {
                            if log.ingest(from + logical, epoch, Determinant::Order { channel })? {
                                added += 1;
                            }
                            logical += 1;
                        }
                        self.stats.order_entries_compressed += run;
                    } else {
                        let det = Determinant::decode_with_tag(tag, &mut r)?;
                        if log.ingest(from + logical, epoch, det)? {
                            added += 1;
                        }
                        logical += 1;
                    }
                }
            }
        }
        self.stats.deltas_ingested += 1;
        self.stats.entries_ingested += added;
        self.stats.entries_encoded += added; // replica arenas encode on ingest
        Ok(added)
    }

    // ----- truncation ----------------------------------------------------

    /// A checkpoint completed: every epoch `<= epoch` is stable; truncate
    /// own and replicated logs (§4.3 "Truncating Causal Logs").
    pub fn truncate_through(&mut self, epoch: EpochId) {
        self.own.truncate_through(epoch);
        for replica in self.replicated.values_mut() {
            replica.log.truncate_through(epoch);
        }
    }

    // ----- recovery ------------------------------------------------------

    /// Export this task's replica of `origin`'s logs (recovery step 3 runs
    /// this at each downstream survivor).
    pub fn export_replica(&self, origin: TaskId) -> Option<TaskLogSnapshot> {
        let replica = self.replicated.get(&origin)?;
        Some(Self::snapshot_of(&replica.log))
    }

    /// Export this task's own logs (used when checkpointing the manager and
    /// by tests).
    pub fn own_snapshot(&self) -> TaskLogSnapshot {
        Self::snapshot_of(&self.own)
    }

    fn snapshot_of(logs: &TaskLog) -> TaskLogSnapshot {
        let mut snap = TaskLogSnapshot::default();
        for id in logs.log_ids() {
            // clonos-lint: allow(recovery-panic, reason = "id was just yielded by log_ids() on the same immutable borrow")
            let log = logs.log(id).expect("valid id");
            snap.logs.push((
                id,
                log.base_seq(),
                log.since(log.base_seq()).map(|(_, e, d)| (e, d)).collect(),
            ));
        }
        snap
    }

    /// Install a merged predecessor snapshot and enter replay mode.
    ///
    /// The manager's own logs restart at the snapshot's base sequence
    /// numbers so that rebuilt entries receive identical sequence numbers —
    /// downstream replicas then dedupe re-shipped deltas for free, and
    /// rebuilt buffers carry byte-identical deltas.
    pub fn begin_replay(&mut self, snapshot: TaskLogSnapshot, resume_epoch: EpochId) {
        let mut source = ReplaySource::default();
        let num_channels = self.cursors.len();
        self.own = TaskLog::new(num_channels);
        for (id, base, mut entries) in snapshot.logs {
            // Entries from epochs before the resume point are stable (their
            // checkpoint completed) and will not be regenerated by replay —
            // drop them, advancing the base sequence to keep numbering
            // aligned with downstream replicas.
            let stale = entries.iter().take_while(|(e, _)| *e < resume_epoch).count();
            entries.drain(..stale);
            let base = base + stale as u64;
            if id == MAIN_LOG {
                source.main = entries.into();
            } else {
                source.channels.insert(id - 1, entries.into());
            }
            // Align our rebuilt log's sequence numbering with the replica's.
            let log = self.own.log_mut(id);
            log.base_seq = base;
        }
        self.epoch = resume_epoch;
        self.replay = Some(source);
        self.check_replay_done(); // an empty snapshot means nothing to replay
    }

    /// Are we replaying (recovery phase of Listing 3)?
    pub fn replaying(&self) -> bool {
        self.replay.as_ref().is_some_and(|r| !r.main.is_empty())
    }

    /// Is channel `ch`'s flush replay still active?
    pub fn replaying_flushes(&self, ch: ChannelId) -> bool {
        self.replay
            .as_ref()
            .and_then(|r| r.channels.get(&ch))
            .is_some_and(|q| !q.is_empty())
    }

    /// Peek the next main-thread determinant to replay.
    pub fn peek_replay(&self) -> Option<&Determinant> {
        self.replay.as_ref()?.main.front().map(|(_, d)| d)
    }

    /// Pop the next main-thread determinant, re-appending it to the rebuilt
    /// own log (Listing 3: `causalLog.append(determinant)` on both paths).
    pub fn pop_replay(&mut self) -> Option<Determinant> {
        let (epoch, det) = self.replay.as_mut()?.main.pop_front()?;
        self.stats.entries_encoded += 1;
        self.own.main.append(epoch, det.clone());
        self.check_replay_done();
        Some(det)
    }

    /// Peek the next flush determinant for `channel` during replay without
    /// consuming it (the output queue cuts a buffer only once its builder
    /// reaches exactly the logged size).
    pub fn peek_replay_flush(&self, channel: ChannelId) -> Option<(u32, u32)> {
        let q = self.replay.as_ref()?.channels.get(&channel)?;
        match q.front() {
            Some((_, Determinant::BufferFlush { size, records })) => Some((*size, *records)),
            _ => None,
        }
    }

    /// Pop the next flush determinant for `channel` during replay.
    pub fn pop_replay_flush(&mut self, channel: ChannelId) -> Option<(u32, u32)> {
        let replay = self.replay.as_mut()?;
        let q = replay.channels.get_mut(&channel)?;
        let (epoch, det) = q.pop_front()?;
        let (size, records) = match det {
            Determinant::BufferFlush { size, records } => (size, records),
            other => {
                debug_assert!(false, "non-flush determinant in channel log: {other:?}");
                return None;
            }
        };
        self.stats.entries_encoded += 1;
        self.own
            .log_mut(channel_log(channel))
            .append(epoch, Determinant::BufferFlush { size, records });
        self.check_replay_done();
        Some((size, records))
    }

    fn check_replay_done(&mut self) {
        let done = self
            .replay
            .as_ref()
            .map(|r| r.main.is_empty() && r.channels.values().all(|q| q.is_empty()))
            .unwrap_or(true);
        if done {
            self.replay = None;
        }
    }

    /// True once replay (main and all channels) has been fully consumed.
    pub fn replay_complete(&self) -> bool {
        self.replay.is_none()
    }

    /// Abandon an in-progress replay (§5.4 availability-over-consistency:
    /// the task continues live with fresh nondeterminism, degrading this
    /// incident to at-least-once).
    pub fn abandon_replay(&mut self) {
        self.replay = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Determinant {
        Determinant::Timestamp { ts: v, offset: 0 }
    }

    #[test]
    fn epoch_log_append_truncate() {
        let mut log = EpochLog::new();
        assert_eq!(log.append(0, ts(1)), 0);
        assert_eq!(log.append(0, ts(2)), 1);
        assert_eq!(log.append(1, ts(3)), 2);
        assert_eq!(log.append(2, ts(4)), 3);
        assert_eq!(log.truncate_through(0), 2);
        assert_eq!(log.base_seq(), 2);
        assert_eq!(log.next_seq(), 4);
        assert!(log.get(1).is_none());
        assert_eq!(log.get(2).unwrap().1, ts(3));
        let rest: Vec<_> = log.since(0).map(|(s, _, _)| s).collect();
        assert_eq!(rest, vec![2, 3]);
    }

    #[test]
    fn epoch_log_ingest_idempotent_and_gap_checked() {
        let mut log = EpochLog::new();
        assert!(log.ingest(0, 0, ts(1)).unwrap());
        assert!(log.ingest(1, 0, ts(2)).unwrap());
        // Duplicate delivery along a second path: ignored.
        assert!(!log.ingest(0, 0, ts(1)).unwrap());
        assert!(!log.ingest(1, 0, ts(2)).unwrap());
        // Forward gap: resync (see ingest docs) — the stale prefix is
        // dropped and the log continues from the incoming sequence.
        assert!(log.ingest(5, 0, ts(9)).unwrap());
        assert_eq!(log.base_seq(), 5);
        assert_eq!(log.next_seq(), 6);
    }

    #[test]
    fn empty_log_resyncs_to_incoming_base() {
        let mut log = EpochLog::new();
        // Fresh replica receiving a replayed delta whose earlier entries were
        // truncated (stable): resync.
        assert!(log.ingest(10, 3, ts(1)).unwrap());
        assert_eq!(log.base_seq(), 10);
        assert_eq!(log.next_seq(), 11);
    }

    #[test]
    fn bytes_accounting_tracks_append_and_truncate() {
        let mut log = EpochLog::new();
        log.append(0, ts(100));
        log.append(1, Determinant::External { payload: vec![0u8; 50] });
        let full = log.encoded_bytes();
        assert!(full > 50);
        log.truncate_through(0);
        assert!(log.encoded_bytes() < full);
        log.truncate_through(1);
        assert_eq!(log.encoded_bytes(), 0);
    }

    fn mgr(task: TaskId, channels: usize, dsd: u32) -> CausalLogManager {
        CausalLogManager::new(task, channels, dsd)
    }

    #[test]
    fn delta_ships_only_new_entries() {
        let mut a = mgr(1, 1, 1);
        a.record(ts(10));
        a.record(Determinant::Order { channel: 0 });
        let d1 = a.collect_delta(0);
        a.record(ts(20));
        let d2 = a.collect_delta(0);
        let d3 = a.collect_delta(0); // nothing new

        let mut b = mgr(2, 0, 1);
        assert_eq!(b.ingest_delta(&d1).unwrap(), 2);
        assert_eq!(b.ingest_delta(&d2).unwrap(), 1);
        assert_eq!(b.ingest_delta(&d3).unwrap(), 0);
        let replica = b.export_replica(1).unwrap();
        assert_eq!(replica.total_entries(), 3);
    }

    #[test]
    fn duplicate_delta_ingestion_is_idempotent() {
        let mut a = mgr(1, 2, 1);
        a.record(ts(1));
        let d_ch0 = a.collect_delta(0);
        let d_ch1 = a.collect_delta(1); // same entries, second channel

        let mut b = mgr(2, 0, 1);
        // Diamond: both copies arrive at the same downstream task.
        assert_eq!(b.ingest_delta(&d_ch0).unwrap(), 1);
        assert_eq!(b.ingest_delta(&d_ch1).unwrap(), 0);
    }

    #[test]
    fn flush_determinants_live_in_channel_logs() {
        let mut a = mgr(1, 2, 1);
        a.record_flush(0, 32_768, 100);
        a.record_flush(1, 128, 1);
        a.record_flush(0, 500, 3);
        let snap = a.own_snapshot();
        let (_, ch0) = snap.for_log(channel_log(0)).unwrap();
        let (_, ch1) = snap.for_log(channel_log(1)).unwrap();
        assert_eq!(ch0.len(), 2);
        assert_eq!(ch1.len(), 1);
        let (_, main) = snap.for_log(MAIN_LOG).unwrap();
        assert!(main.is_empty());
    }

    #[test]
    fn dsd1_does_not_forward_upstream_logs() {
        // u -> a -> b with DSD=1: a replicates u's log but must not forward
        // it to b.
        let mut u = mgr(1, 1, 1);
        u.record(ts(5));
        let du = u.collect_delta(0);
        let mut a = mgr(2, 1, 1);
        a.ingest_delta(&du).unwrap();
        a.record(ts(7));
        let da = a.collect_delta(0);
        let mut b = mgr(3, 0, 1);
        b.ingest_delta(&da).unwrap();
        assert!(b.export_replica(1).is_none(), "u's log leaked past DSD=1");
        assert!(b.export_replica(2).is_some());
    }

    #[test]
    fn dsd2_forwards_one_extra_hop() {
        // u -> a -> b -> c with DSD=2: b holds u's log, c must not.
        let mut u = mgr(1, 1, 2);
        u.record(ts(5));
        let du = u.collect_delta(0);
        let mut a = mgr(2, 1, 2);
        a.ingest_delta(&du).unwrap();
        let da = a.collect_delta(0);
        let mut b = mgr(3, 1, 2);
        b.ingest_delta(&da).unwrap();
        assert_eq!(b.export_replica(1).unwrap().total_entries(), 1);
        let db = b.collect_delta(0);
        let mut c = mgr(4, 0, 2);
        c.ingest_delta(&db).unwrap();
        assert!(c.export_replica(1).is_none(), "u's log exceeded DSD=2");
        assert!(c.export_replica(3).is_some());
        // a's log is 2 hops at c — exactly DSD — so it must be present.
        assert!(c.export_replica(2).is_some());
    }

    #[test]
    fn dsd0_disables_logging_entirely() {
        let mut a = mgr(1, 1, 0);
        a.record(ts(1));
        a.record_flush(0, 10, 1);
        let d = a.collect_delta(0);
        assert!(d.is_empty());
        assert_eq!(a.stats.determinants_recorded, 0);
    }

    #[test]
    fn truncation_drops_stable_epochs_everywhere() {
        let mut a = mgr(1, 1, 1);
        a.set_epoch(0);
        a.record(ts(1));
        a.set_epoch(1);
        a.record(ts(2));
        let d = a.collect_delta(0);
        let mut b = mgr(2, 0, 1);
        b.ingest_delta(&d).unwrap();
        b.truncate_through(0);
        let replica = b.export_replica(1).unwrap();
        assert_eq!(replica.total_entries(), 1);
        a.truncate_through(0);
        assert_eq!(a.own_snapshot().total_entries(), 1);
    }

    #[test]
    fn snapshot_merge_takes_longest_prefix() {
        let mut a = mgr(1, 1, 1);
        a.record(ts(1));
        let d1 = a.collect_delta(0);
        a.record(ts(2));
        let d2 = a.collect_delta(0);

        // Downstream x got both deltas, y only the first.
        let mut x = mgr(2, 0, 1);
        x.ingest_delta(&d1).unwrap();
        x.ingest_delta(&d2).unwrap();
        let mut y = mgr(3, 0, 1);
        y.ingest_delta(&d1).unwrap();

        let mut merged = y.export_replica(1).unwrap();
        merged.merge(&x.export_replica(1).unwrap());
        assert_eq!(merged.total_entries(), 2);
        // Merge the other way too — same result.
        let mut merged2 = x.export_replica(1).unwrap();
        merged2.merge(&y.export_replica(1).unwrap());
        assert_eq!(merged2.total_entries(), 2);
    }

    #[test]
    fn replay_consumes_in_order_and_rebuilds_log() {
        let mut a = mgr(1, 1, 1);
        a.record(Determinant::Order { channel: 0 });
        a.record(ts(42));
        a.record(Determinant::Order { channel: 1 });
        a.record_flush(0, 100, 2);
        let d = a.collect_delta(0);
        let mut down = mgr(2, 0, 1);
        down.ingest_delta(&d).unwrap();

        // a fails; replacement replays from down's replica.
        let snap = down.export_replica(1).unwrap();
        let mut a2 = mgr(1, 1, 1);
        a2.begin_replay(snap, 0);
        assert!(a2.replaying());
        assert_eq!(a2.pop_replay(), Some(Determinant::Order { channel: 0 }));
        assert_eq!(a2.pop_replay(), Some(ts(42)));
        assert_eq!(a2.peek_replay(), Some(&Determinant::Order { channel: 1 }));
        assert_eq!(a2.pop_replay(), Some(Determinant::Order { channel: 1 }));
        assert!(!a2.replaying());
        assert!(a2.replaying_flushes(0));
        assert_eq!(a2.pop_replay_flush(0), Some((100, 2)));
        assert!(a2.replay_complete());
        // Rebuilt log matches the original.
        assert_eq!(a2.own_snapshot(), a.own_snapshot());
    }

    #[test]
    fn rebuilt_entries_get_identical_sequence_numbers_after_truncation() {
        let mut a = mgr(1, 1, 1);
        a.set_epoch(0);
        a.record(ts(1));
        a.record(ts(2));
        let d0 = a.collect_delta(0);
        a.set_epoch(1);
        a.record(ts(3));
        let d1 = a.collect_delta(0);
        let mut down = mgr(2, 1, 1);
        down.ingest_delta(&d0).unwrap();
        down.ingest_delta(&d1).unwrap();
        // Checkpoint 0 completes: both sides truncate epoch 0.
        a.truncate_through(0);
        down.truncate_through(0);

        let snap = down.export_replica(1).unwrap();
        let mut a2 = mgr(1, 1, 1);
        a2.begin_replay(snap, 1);
        assert_eq!(a2.pop_replay(), Some(ts(3)));
        // The rebuilt entry has the same seq (2) as the original — a delta
        // collected now must dedupe cleanly at `down`.
        let d = a2.collect_delta(0);
        assert_eq!(down.ingest_delta(&d).unwrap(), 0, "downstream re-ingested known entries");
    }

    #[test]
    fn stats_track_volume() {
        let mut a = mgr(1, 1, 1);
        a.record(ts(1));
        a.record(ts(2));
        let d = a.collect_delta(0);
        assert_eq!(a.stats.determinants_recorded, 2);
        assert_eq!(a.stats.delta_entries_shipped, 2);
        assert!(a.stats.delta_bytes_shipped >= d.len() as u64);
        assert!(a.resident_bytes() > 0);
    }

    #[test]
    fn empty_delta_roundtrip() {
        let mut a = mgr(1, 1, 1);
        let d = a.collect_delta(0);
        let mut b = mgr(2, 0, 1);
        assert_eq!(b.ingest_delta(&d).unwrap(), 0);
    }
}
