//! The recovery protocol (§2.2) and the Figure-4 failure-case analysis
//! (§5.3).
//!
//! [`analyze_failure`] decides, for a concrete failed set and determinant
//! sharing depth, whether consistent **local** recovery is possible or the
//! job must fall back to a **global rollback** (the worst-case leaf of
//! Figure 4). The engine consults it before launching per-task recovery.
//!
//! The per-task recovery procedure itself is a six-step plan
//! ([`RecoveryPlan`]) mirroring §2.2:
//! 1. activate the standby (or cold-start a replacement),
//! 2. reconfigure network connections,
//! 3. retrieve the determinant log from downstream survivors,
//! 4. request in-flight records from upstream,
//! 5. replay guided by determinants,
//! 6. deduplicate output at the sender using the flush determinants plus the
//!    downstream-reported received-buffer counts.

use crate::{ChannelId, TaskId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Static topology view used by the analysis: tasks and directed channels.
#[derive(Clone, Debug, Default)]
pub struct TopologyInfo {
    /// Edges as (upstream, downstream) pairs.
    edges: Vec<(TaskId, TaskId)>,
    tasks: BTreeSet<TaskId>,
    sources: BTreeSet<TaskId>,
}

impl TopologyInfo {
    pub fn new() -> TopologyInfo {
        TopologyInfo::default()
    }

    pub fn add_task(&mut self, t: TaskId) {
        self.tasks.insert(t);
    }

    pub fn add_edge(&mut self, up: TaskId, down: TaskId) {
        self.tasks.insert(up);
        self.tasks.insert(down);
        self.edges.push((up, down));
    }

    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.iter().copied()
    }

    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    fn recompute_sources(&mut self) {
        let has_input: BTreeSet<TaskId> = self.edges.iter().map(|&(_, d)| d).collect();
        self.sources = self.tasks.iter().copied().filter(|t| !has_input.contains(t)).collect();
    }

    pub fn downstream_of(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.edges.iter().filter(move |&&(u, _)| u == t).map(|&(_, d)| d)
    }

    pub fn upstream_of(&self, t: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.edges.iter().filter(move |&&(_, d)| d == t).map(|&(u, _)| u)
    }

    /// All tasks reachable downstream from `t`, with their minimum hop count.
    pub fn downstream_cone(&self, t: TaskId) -> BTreeMap<TaskId, u32> {
        let mut dist: BTreeMap<TaskId, u32> = BTreeMap::new();
        let mut q: VecDeque<(TaskId, u32)> = self.downstream_of(t).map(|d| (d, 1)).collect();
        while let Some((n, h)) = q.pop_front() {
            match dist.get(&n) {
                Some(&existing) if existing <= h => continue,
                _ => {}
            }
            dist.insert(n, h);
            for d in self.downstream_of(n) {
                q.push_back((d, h + 1));
            }
        }
        dist
    }

    /// Graph depth: the longest source→sink path length (sources have depth
    /// zero, per §5.3).
    pub fn depth(&self) -> u32 {
        let mut topo = self.clone();
        topo.recompute_sources();
        // Longest-path DP over the DAG via repeated relaxation (graphs here
        // are small; simplicity over asymptotics).
        let mut depth: BTreeMap<TaskId, u32> = topo.sources.iter().map(|&s| (s, 0)).collect();
        let mut changed = true;
        let mut iterations = 0;
        while changed {
            changed = false;
            iterations += 1;
            // clonos-lint: allow(recovery-panic, reason = "guards against a cyclic job graph, a construction-time config error caught before any failure handling runs")
            assert!(
                iterations <= self.tasks.len() + 1,
                "cycle detected in dataflow graph"
            );
            for &(u, d) in &self.edges {
                let du = depth.get(&u).copied();
                if let Some(du) = du {
                    let nd = du + 1;
                    if depth.get(&d).map(|&x| x < nd).unwrap_or(true) {
                        depth.insert(d, nd);
                        changed = true;
                    }
                }
            }
        }
        depth.values().copied().max().unwrap_or(0)
    }
}

/// Outcome of the Figure-4 analysis for a concrete failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryDecision {
    /// Every failed task can be recovered locally: for each, either a
    /// surviving holder of its determinants exists, or no survivor depends
    /// on its unstable events (free execution path).
    Local {
        /// Tasks recoverable with determinants, mapped to the surviving
        /// holders that will serve the determinant-log requests.
        with_determinants: BTreeMap<TaskId, Vec<TaskId>>,
        /// Tasks recoverable without determinants (their whole downstream
        /// cone failed with them — nobody depends on their unlogged events).
        free: Vec<TaskId>,
    },
    /// An orphan exists: some survivor depends on events whose determinants
    /// died with the failed set (only possible when DSD < graph depth).
    /// Exactly-once then requires a global rollback (§5.3 Case 2).
    GlobalRollback { orphaned: Vec<TaskId> },
}

/// Figure-4 analysis. `dsd = 0` disables causal logging entirely, in which
/// case every failure is "recover without determinants" (at-least-once).
pub fn analyze_failure(
    topology: &TopologyInfo,
    failed: &BTreeSet<TaskId>,
    dsd: u32,
) -> RecoveryDecision {
    let mut with_determinants = BTreeMap::new();
    let mut free = Vec::new();
    let mut orphaned = Vec::new();

    for &f in failed {
        let cone = topology.downstream_cone(f);
        // Log(e) for f's unstable events: f itself plus downstream tasks
        // within `dsd` hops (they received piggybacked deltas).
        let holders: Vec<TaskId> = cone
            .iter()
            .filter(|&(_, &h)| h <= dsd)
            .map(|(&t, _)| t)
            .filter(|t| !failed.contains(t))
            .collect();
        // Depend(e): every downstream task that received data from f.
        let surviving_dependents: Vec<TaskId> =
            cone.keys().copied().filter(|t| !failed.contains(t)).collect();

        if !holders.is_empty() && dsd > 0 {
            // Log(e) ⊄ F: a surviving holder guides recovery.
            with_determinants.insert(f, holders);
        } else if surviving_dependents.is_empty() {
            // Depend(e) ⊆ F: nobody alive depends on f's unlogged events —
            // a different execution path is consistent.
            free.push(f);
        } else if dsd == 0 {
            // At-least-once mode: recover divergently, never roll back.
            free.push(f);
        } else {
            // Log(e) ⊆ F but Depend(e) ⊄ F: orphans.
            orphaned.push(f);
        }
    }

    if orphaned.is_empty() {
        RecoveryDecision::Local { with_determinants, free }
    } else {
        RecoveryDecision::GlobalRollback { orphaned }
    }
}

/// The six protocol steps for one recovering task, §2.2. The engine executes
/// these; the enum documents and orders them, and shows up in traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryStep {
    ActivateStandby,
    ReconfigureNetwork,
    RetrieveDeterminantLog,
    RequestInFlightRecords,
    ReplayRecords,
    DeduplicateOutput,
}

/// Plan for recovering a single failed task.
#[derive(Clone, Debug)]
pub struct RecoveryPlan {
    pub task: TaskId,
    /// Surviving downstream tasks to query for the determinant log (step 3).
    pub log_holders: Vec<TaskId>,
    /// Upstream tasks that must replay their in-flight logs (step 4); the
    /// lineage rule makes this recursive if they are themselves recovering.
    pub replay_sources: Vec<TaskId>,
    /// Whether a standby should be activated (vs. cold replacement).
    pub use_standby: bool,
}

/// Report sent by a downstream survivor in response to a determinant-log
/// request (step 3): its replica of the failed task's logs plus how many
/// buffers it has received per channel since the last completed checkpoint —
/// the sender-side dedup counts of step 6.
#[derive(Clone, Debug, Default)]
pub struct LogRetrievalResponse {
    pub snapshot: crate::causal_log::TaskLogSnapshot,
    /// (channel of the failed task that feeds this survivor, buffers received
    /// in un-checkpointed epochs).
    pub received_buffers: Vec<(ChannelId, u64)>,
}

impl LogRetrievalResponse {
    /// Merge multiple survivors' responses: longest log wins per log id;
    /// received counts are per distinct channel so they concatenate.
    pub fn merge(&mut self, other: LogRetrievalResponse) {
        self.snapshot.merge(&other.snapshot);
        for (ch, n) in other.received_buffers {
            match self.received_buffers.iter_mut().find(|(c, _)| *c == ch) {
                Some((_, existing)) => *existing = (*existing).max(n),
                None => self.received_buffers.push((ch, n)),
            }
        }
    }

    pub fn received_on(&self, ch: ChannelId) -> u64 {
        self.received_buffers.iter().find(|(c, _)| *c == ch).map(|&(_, n)| n).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain 1 → 2 → 3 → 4 (task 1 is the source).
    fn chain4() -> TopologyInfo {
        let mut t = TopologyInfo::new();
        t.add_edge(1, 2);
        t.add_edge(2, 3);
        t.add_edge(3, 4);
        t
    }

    fn failed(ts: &[TaskId]) -> BTreeSet<TaskId> {
        ts.iter().copied().collect()
    }

    #[test]
    fn depth_of_chain() {
        assert_eq!(chain4().depth(), 3);
    }

    #[test]
    fn depth_of_diamond() {
        let mut t = TopologyInfo::new();
        t.add_edge(1, 2);
        t.add_edge(1, 3);
        t.add_edge(2, 4);
        t.add_edge(3, 4);
        t.add_edge(4, 5);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn downstream_cone_hops() {
        let t = chain4();
        let cone = t.downstream_cone(1);
        assert_eq!(cone.get(&2), Some(&1));
        assert_eq!(cone.get(&3), Some(&2));
        assert_eq!(cone.get(&4), Some(&3));
        assert!(t.downstream_cone(4).is_empty());
    }

    #[test]
    fn single_failure_recovers_with_determinants() {
        let t = chain4();
        match analyze_failure(&t, &failed(&[2]), 1) {
            RecoveryDecision::Local { with_determinants, free } => {
                assert_eq!(with_determinants.get(&2), Some(&vec![3]));
                assert!(free.is_empty());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn full_dsd_never_rolls_back() {
        let t = chain4();
        let d = t.depth();
        // Any failure combination under DSD = D stays local (Case 1, §5.3).
        for combo in [vec![2], vec![2, 3], vec![1, 2, 3], vec![1, 2, 3, 4]] {
            let decision = analyze_failure(&t, &failed(&combo), d);
            assert!(
                matches!(decision, RecoveryDecision::Local { .. }),
                "combo {combo:?} rolled back under full DSD"
            );
        }
    }

    #[test]
    fn consecutive_failures_beyond_dsd_cause_rollback() {
        let t = chain4();
        // DSD=1: tasks 2 and 3 fail together. 2's only holder (3) failed,
        // and task 4 survives *and depends* on 2 → orphan → global rollback.
        match analyze_failure(&t, &failed(&[2, 3]), 1) {
            RecoveryDecision::GlobalRollback { orphaned } => assert_eq!(orphaned, vec![2]),
            other => panic!("unexpected: {other:?}"),
        }
        // DSD=2 tolerates exactly this pattern: 4 holds 2's log (2 hops).
        match analyze_failure(&t, &failed(&[2, 3]), 2) {
            RecoveryDecision::Local { with_determinants, .. } => {
                assert_eq!(with_determinants.get(&2), Some(&vec![4]));
                assert_eq!(with_determinants.get(&3), Some(&vec![4]));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn whole_downstream_cone_failing_is_free() {
        let t = chain4();
        // 3 and 4 both fail: 3's entire cone ({4}) failed with it, so 3
        // recovers freely; 4 has an empty cone and is always free.
        match analyze_failure(&t, &failed(&[3, 4]), 1) {
            RecoveryDecision::Local { with_determinants, free } => {
                assert!(with_determinants.is_empty());
                assert_eq!(free, vec![3, 4]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn all_tasks_failing_is_equivalent_to_global_restore_but_local() {
        let t = chain4();
        // F = N: no task depends on any other (§5.3 Case 1 extreme); recovery
        // is effectively restoring the checkpoint + source replay, but the
        // decision is still Local (no orphans).
        match analyze_failure(&t, &failed(&[1, 2, 3, 4]), 1) {
            RecoveryDecision::Local { with_determinants, free } => {
                assert!(with_determinants.is_empty());
                assert_eq!(free.len(), 4);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn dsd_zero_is_always_divergent_local() {
        let t = chain4();
        match analyze_failure(&t, &failed(&[2, 3]), 0) {
            RecoveryDecision::Local { with_determinants, free } => {
                assert!(with_determinants.is_empty());
                assert_eq!(free, vec![2, 3]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn diamond_survivor_on_either_branch_holds_logs() {
        let mut t = TopologyInfo::new();
        t.add_edge(1, 2);
        t.add_edge(1, 3);
        t.add_edge(2, 4);
        t.add_edge(3, 4);
        // 1 and 2 fail, DSD=1: 3 survives and holds 1's determinants.
        match analyze_failure(&t, &failed(&[1, 2]), 1) {
            RecoveryDecision::Local { with_determinants, .. } => {
                assert_eq!(with_determinants.get(&1), Some(&vec![3]));
                // 2's holder is 4 (1 hop downstream of 2), which survives.
                assert_eq!(with_determinants.get(&2), Some(&vec![4]));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn log_retrieval_merge_takes_max() {
        let mut a = LogRetrievalResponse {
            snapshot: Default::default(),
            received_buffers: vec![(0, 5)],
        };
        let b = LogRetrievalResponse {
            snapshot: Default::default(),
            received_buffers: vec![(0, 3), (1, 7)],
        };
        a.merge(b);
        assert_eq!(a.received_on(0), 5);
        assert_eq!(a.received_on(1), 7);
        assert_eq!(a.received_on(9), 0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_graph_detected() {
        let mut t = TopologyInfo::new();
        t.add_edge(0, 1); // a source feeding the cycle
        t.add_edge(1, 2);
        t.add_edge(2, 1);
        let _ = t.depth();
    }
}
