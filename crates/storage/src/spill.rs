//! Spill device: an append-oriented local "disk" with an I/O cost model,
//! backing the spilling in-flight log of §6.1.
//!
//! The in-flight log hands buffers to the device asynchronously (the paper's
//! "asynchronously spilling in-flight log"); reads happen during replay with
//! a sequential access pattern, which is why the paper's `spill-threshold`
//! policy performs well. The cost model distinguishes a per-operation seek
//! cost from streaming throughput so that batched I/O (spill-threshold,
//! spill-epoch) beats per-buffer I/O (spill-buffer) — the exact trade-off the
//! §7.5 memory experiment measures.

use bytes::Bytes;
use clonos_sim::VirtualDuration;
use std::collections::BTreeMap;

/// Handle to a spilled buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpillHandle(pub u64);

/// I/O cost model.
#[derive(Clone, Copy, Debug)]
pub struct IoModel {
    /// Fixed cost per I/O operation (syscall + seek).
    pub per_op: VirtualDuration,
    /// Streaming throughput, bytes per second.
    pub bytes_per_sec: u64,
}

impl Default for IoModel {
    fn default() -> Self {
        // 100 µs per op, 500 MB/s sequential — a commodity SSD.
        IoModel { per_op: VirtualDuration::from_micros(100), bytes_per_sec: 500_000_000 }
    }
}

impl IoModel {
    pub fn cost(&self, bytes: u64, ops: u64) -> VirtualDuration {
        let stream = bytes
            .saturating_mul(1_000_000)
            .checked_div(self.bytes_per_sec)
            .map(VirtualDuration::from_micros)
            .unwrap_or(VirtualDuration::ZERO);
        VirtualDuration::from_micros(self.per_op.as_micros() * ops) + stream
    }
}

/// The device. Writes are modelled, contents retained for later reads.
/// `Clone` exists for crash-simulation tests that snapshot device contents
/// at an edit boundary and reopen from the copy.
#[derive(Clone, Debug, Default)]
pub struct SpillDevice {
    model: IoModel,
    data: BTreeMap<SpillHandle, Bytes>,
    next: u64,
    bytes_written: u64,
    bytes_read: u64,
    write_ops: u64,
    read_ops: u64,
}

impl SpillDevice {
    pub fn new() -> SpillDevice {
        SpillDevice::default()
    }

    pub fn with_model(model: IoModel) -> SpillDevice {
        SpillDevice { model, ..Default::default() }
    }

    /// Write one buffer; returns its handle and the modelled I/O duration.
    pub fn write(&mut self, bytes: Bytes) -> (SpillHandle, VirtualDuration) {
        let h = SpillHandle(self.next);
        self.next += 1;
        self.bytes_written += bytes.len() as u64;
        self.write_ops += 1;
        let cost = self.model.cost(bytes.len() as u64, 1);
        self.data.insert(h, bytes);
        (h, cost)
    }

    /// Write a batch of buffers as one sequential operation (cheaper per
    /// buffer than individual writes — this is what batching buys).
    pub fn write_batch(&mut self, buffers: Vec<Bytes>) -> (Vec<SpillHandle>, VirtualDuration) {
        let total: u64 = buffers.iter().map(|b| b.len() as u64).sum();
        let cost = self.model.cost(total, 1);
        self.write_ops += 1;
        self.bytes_written += total;
        let handles = buffers
            .into_iter()
            .map(|b| {
                let h = SpillHandle(self.next);
                self.next += 1;
                self.data.insert(h, b);
                h
            })
            .collect();
        (handles, cost)
    }

    /// Read a buffer back; the buffer stays on the device until freed.
    pub fn read(&mut self, h: SpillHandle) -> Option<(Bytes, VirtualDuration)> {
        let bytes = self.data.get(&h)?.clone();
        self.read_ops += 1;
        self.bytes_read += bytes.len() as u64;
        let cost = self.model.cost(bytes.len() as u64, 1);
        Some((bytes, cost))
    }

    /// Read a byte range out of a spilled buffer — the lsm point-read path,
    /// which touches only the sparse-index block containing the key rather
    /// than the whole segment. Charged as one op plus the range's bytes.
    pub fn read_range(
        &mut self,
        h: SpillHandle,
        offset: usize,
        len: usize,
    ) -> Option<(Bytes, VirtualDuration)> {
        let bytes = self.data.get(&h)?;
        let end = offset.checked_add(len)?;
        if end > bytes.len() {
            return None;
        }
        let slice = bytes.slice(offset..end);
        self.read_ops += 1;
        self.bytes_read += slice.len() as u64;
        let cost = self.model.cost(slice.len() as u64, 1);
        Some((slice, cost))
    }

    /// Borrow a buffer without modelling any I/O. Oracle paths (state
    /// digests, canonical snapshot folds) use this so observing the tier
    /// never perturbs the simulated timeline.
    pub fn peek(&self, h: SpillHandle) -> Option<&Bytes> {
        self.data.get(&h)
    }

    /// Free a spilled buffer (log truncation after a checkpoint).
    pub fn free(&mut self, h: SpillHandle) -> bool {
        self.data.remove(&h).is_some()
    }

    pub fn resident_bytes(&self) -> u64 {
        self.data.values().map(|b| b.len() as u64).sum()
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    pub fn read_ops(&self) -> u64 {
        self.read_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_free_cycle() {
        let mut d = SpillDevice::new();
        let (h, wcost) = d.write(Bytes::from_static(b"hello"));
        assert!(wcost >= VirtualDuration::from_micros(100));
        let (bytes, _) = d.read(h).unwrap();
        assert_eq!(&bytes[..], b"hello");
        assert!(d.free(h));
        assert!(!d.free(h));
        assert!(d.read(h).is_none());
    }

    #[test]
    fn batch_write_cheaper_than_individual() {
        let bufs: Vec<Bytes> = (0..10).map(|_| Bytes::from(vec![0u8; 1024])).collect();
        let mut a = SpillDevice::new();
        let mut individual = VirtualDuration::ZERO;
        for b in bufs.clone() {
            individual = individual + a.write(b).1;
        }
        let mut bdev = SpillDevice::new();
        let (handles, batched) = bdev.write_batch(bufs);
        assert_eq!(handles.len(), 10);
        assert!(batched < individual, "batched={batched} individual={individual}");
        assert_eq!(a.bytes_written(), bdev.bytes_written());
        assert_eq!(a.write_ops(), 10);
        assert_eq!(bdev.write_ops(), 1);
    }

    #[test]
    fn accounting_tracks_residency() {
        let mut d = SpillDevice::new();
        let (h1, _) = d.write(Bytes::from(vec![0u8; 100]));
        let (_h2, _) = d.write(Bytes::from(vec![0u8; 50]));
        assert_eq!(d.resident_bytes(), 150);
        d.free(h1);
        assert_eq!(d.resident_bytes(), 50);
        assert_eq!(d.bytes_written(), 150);
    }
}
