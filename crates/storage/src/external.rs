//! The "external world": a time-varying key-value service standing in for
//! the external databases / HTTP endpoints the paper's UDFs call (§4.1,
//! "consider a call to an external database that queries the current stock
//! price; this can change at any point in time").
//!
//! Reads are a deterministic function of `(key, time bucket, seed)` plus any
//! explicit writes, so the *service* is reproducible by the test harness,
//! while from the streaming job's perspective a call at a different time
//! returns a different answer — exactly the nondeterminism causal logging
//! must capture: replaying a failed operator without the logged response
//! would observe different values.

use clonos_sim::{SimRng, VirtualTime};
use std::collections::BTreeMap;

/// Time-varying external key-value service.
#[derive(Clone, Debug)]
pub struct ExternalKv {
    seed: u64,
    /// Granularity at which autonomous values change, in microseconds.
    change_period_us: u64,
    /// Explicit writes override the autonomous signal from their write time on.
    writes: BTreeMap<u64, Vec<(VirtualTime, i64)>>,
    calls: u64,
}

impl ExternalKv {
    pub fn new(seed: u64) -> ExternalKv {
        ExternalKv { seed, change_period_us: 1_000, writes: BTreeMap::new(), calls: 0 }
    }

    pub fn with_change_period_us(mut self, us: u64) -> ExternalKv {
        assert!(us > 0);
        self.change_period_us = us;
        self
    }

    /// Query the current value of `key` at virtual time `now`.
    pub fn get(&mut self, key: u64, now: VirtualTime) -> i64 {
        self.calls += 1;
        if let Some(history) = self.writes.get(&key) {
            if let Some(&(_, v)) = history.iter().rev().find(|&&(t, _)| t <= now) {
                return v;
            }
        }
        // Autonomous signal: changes every `change_period_us`.
        let bucket = now.as_micros() / self.change_period_us;
        let mut r = SimRng::new(self.seed).fork(key).fork(bucket);
        (r.next_u64() % 100_000) as i64
    }

    /// Explicitly write a value effective from `now` (used by examples that
    /// model an operator updating an external store).
    pub fn put(&mut self, key: u64, now: VirtualTime, value: i64) {
        self.writes.entry(key).or_default().push((now, value));
    }

    pub fn calls(&self) -> u64 {
        self.calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clonos_sim::VirtualDuration;

    #[test]
    fn same_time_same_answer() {
        let mut kv = ExternalKv::new(7);
        let t = VirtualTime(123_456);
        assert_eq!(kv.get(5, t), kv.get(5, t));
    }

    #[test]
    fn values_change_over_time() {
        let mut kv = ExternalKv::new(7);
        let vals: Vec<i64> =
            (0..50).map(|i| kv.get(5, VirtualTime::ZERO + VirtualDuration::from_millis(i))).collect();
        let distinct: std::collections::BTreeSet<_> = vals.iter().collect();
        assert!(distinct.len() > 10, "external value barely changes: {distinct:?}");
        assert_eq!(kv.calls(), 50);
    }

    #[test]
    fn different_keys_differ() {
        let mut kv = ExternalKv::new(7);
        let t = VirtualTime(5_000);
        assert_ne!(kv.get(1, t), kv.get(2, t));
    }

    #[test]
    fn writes_override_from_their_time() {
        let mut kv = ExternalKv::new(7);
        kv.put(9, VirtualTime(1_000), 42);
        // Before the write: autonomous signal.
        let before = kv.get(9, VirtualTime(500));
        // After: the write wins.
        assert_eq!(kv.get(9, VirtualTime(1_000)), 42);
        assert_eq!(kv.get(9, VirtualTime(99_999_999)), 42);
        // A later write supersedes.
        kv.put(9, VirtualTime(2_000), 43);
        assert_eq!(kv.get(9, VirtualTime(1_500)), 42);
        assert_eq!(kv.get(9, VirtualTime(2_500)), 43);
        let _ = before;
    }

    #[test]
    fn deterministic_across_instances_with_same_seed() {
        let mut a = ExternalKv::new(11);
        let mut b = ExternalKv::new(11);
        for i in 0..20 {
            let t = VirtualTime(i * 777);
            assert_eq!(a.get(i, t), b.get(i, t));
        }
    }
}
