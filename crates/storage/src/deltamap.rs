//! Sectioned key/value delta-map codec — the wire format of incremental
//! checkpoints.
//!
//! A snapshot image is a flat stream of entries over `(section, key)` pairs:
//! a varint entry count followed by, per entry, a one-byte section id, a
//! length-prefixed key (sections use fixed-width big-endian keys so byte-wise
//! lexicographic order equals numeric order), a one-byte op, and — for puts —
//! a `u32`-LE length-prefixed value. A **full image** contains only puts in
//! canonical `(section, key)` order; a **delta** contains puts for entries
//! mutated since the parent image and tombstones for entries removed.
//!
//! [`merge_chain`] applies deltas (oldest first) on top of a base image and
//! re-encodes the canonical full image — byte-identical to a full snapshot
//! taken at the same epoch, which is the property the engine's incremental
//! checkpointing tests pin down.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use bytes::Bytes;
use std::collections::BTreeMap;

/// Entry op: the `(section, key)` pair was removed since the parent image.
pub const OP_TOMBSTONE: u8 = 0;
/// Entry op: the `(section, key)` pair maps to the attached value.
pub const OP_PUT: u8 = 1;

/// One decoded entry, borrowing key/value bytes from the underlying image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryRef<'a> {
    pub section: u8,
    pub key: &'a [u8],
    /// `Some(value)` for a put, `None` for a tombstone.
    pub value: Option<&'a [u8]>,
}

/// Write a put entry's header (section, key, op, value-length placeholder)
/// and return the placeholder position. The caller streams the value into
/// `w` and then closes the entry with [`ByteWriter::end_u32_len`].
#[inline]
pub fn write_put_header(w: &mut ByteWriter, section: u8, key: &[u8]) -> usize {
    debug_assert!(key.len() <= u8::MAX as usize);
    w.put_u8(section);
    w.put_u8(key.len() as u8);
    w.put_raw(key);
    w.put_u8(OP_PUT);
    w.begin_u32_len()
}

/// Write a complete put entry with an already-materialized value.
pub fn write_put(w: &mut ByteWriter, section: u8, key: &[u8], value: &[u8]) {
    let pos = write_put_header(w, section, key);
    w.put_raw(value);
    w.end_u32_len(pos);
}

/// Write a tombstone entry (no value).
pub fn write_tombstone(w: &mut ByteWriter, section: u8, key: &[u8]) {
    debug_assert!(key.len() <= u8::MAX as usize);
    w.put_u8(section);
    w.put_u8(key.len() as u8);
    w.put_raw(key);
    w.put_u8(OP_TOMBSTONE);
}

fn read_entry<'a>(r: &mut ByteReader<'a>) -> Result<EntryRef<'a>, CodecError> {
    let section = r.get_u8()?;
    let klen = r.get_u8()? as usize;
    let key = r.get_raw(klen)?;
    let value = match r.get_u8()? {
        OP_TOMBSTONE => None,
        OP_PUT => {
            let vlen = r.get_u32_le()? as usize;
            Some(r.get_raw(vlen)?)
        }
        tag => return Err(CodecError::InvalidTag { context: "deltamap op", tag }),
    };
    Ok(EntryRef { section, key, value })
}

/// Decode a full image or delta into its entry list, in stored order.
pub fn read_entries(bytes: &[u8]) -> Result<Vec<EntryRef<'_>>, CodecError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_varint()? as usize;
    // Cap the pre-allocation so a corrupt count cannot balloon memory; the
    // per-entry EOF checks still reject short inputs.
    let mut out = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        out.push(read_entry(&mut r)?);
    }
    if !r.is_empty() {
        return Err(CodecError::InvalidTag { context: "deltamap trailing bytes", tag: 0 });
    }
    Ok(out)
}

/// Apply `deltas` (oldest first) on top of the full image `base` and encode
/// the resulting canonical full image: entries sorted by `(section, key)`,
/// all puts. Errors on any malformed layer rather than panicking — chain
/// reconstruction sits on the recovery path.
pub fn merge_chain<'a>(base: &'a [u8], deltas: &[&'a [u8]]) -> Result<Bytes, CodecError> {
    let mut layers: Vec<Vec<EntryRef<'a>>> = Vec::with_capacity(deltas.len() + 1);
    layers.push(read_entries(base)?);
    for d in deltas {
        layers.push(read_entries(d)?);
    }
    let mut map: BTreeMap<(u8, &[u8]), &[u8]> = BTreeMap::new();
    for layer in &layers {
        for e in layer {
            match e.value {
                Some(v) => {
                    map.insert((e.section, e.key), v);
                }
                None => {
                    map.remove(&(e.section, e.key));
                }
            }
        }
    }
    let total: usize =
        map.iter().map(|(&(_, k), &v)| 7 + k.len() + v.len()).sum::<usize>() + 10;
    let mut w = ByteWriter::with_capacity(total);
    w.put_varint(map.len() as u64);
    for (&(section, key), &value) in &map {
        write_put(&mut w, section, key, value);
    }
    Ok(w.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestEntry<'a> = (u8, &'a [u8], Option<&'a [u8]>);

    fn image(entries: &[TestEntry<'_>]) -> Bytes {
        let mut w = ByteWriter::new();
        w.put_varint(entries.len() as u64);
        for &(section, key, value) in entries {
            match value {
                Some(v) => write_put(&mut w, section, key, v),
                None => write_tombstone(&mut w, section, key),
            }
        }
        w.freeze()
    }

    #[test]
    fn roundtrip_entries() {
        let img = image(&[(1, b"aa", Some(b"v1")), (2, b"bb", None)]);
        let es = read_entries(&img).unwrap();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0], EntryRef { section: 1, key: b"aa", value: Some(b"v1") });
        assert_eq!(es[1], EntryRef { section: 2, key: b"bb", value: None });
    }

    #[test]
    fn merge_applies_puts_and_tombstones_in_order() {
        let base = image(&[(1, b"a", Some(b"1")), (1, b"b", Some(b"2")), (2, b"c", Some(b"3"))]);
        let d1 = image(&[(1, b"b", None), (1, b"d", Some(b"4"))]);
        let d2 = image(&[(1, b"d", Some(b"5")), (2, b"c", None)]);
        let merged = merge_chain(&base, &[&d1, &d2]).unwrap();
        let expect = image(&[(1, b"a", Some(b"1")), (1, b"d", Some(b"5"))]);
        assert_eq!(merged, expect);
    }

    #[test]
    fn merge_of_base_alone_is_canonical_identity() {
        let base = image(&[(0, b"", Some(b"meta")), (1, b"k", Some(b"v"))]);
        assert_eq!(merge_chain(&base, &[]).unwrap(), base);
    }

    #[test]
    fn tombstone_of_absent_key_is_a_noop() {
        let base = image(&[(1, b"a", Some(b"1"))]);
        let d = image(&[(1, b"zz", None)]);
        assert_eq!(merge_chain(&base, &[&d]).unwrap(), base);
    }

    #[test]
    fn malformed_layers_error_not_panic() {
        let good = image(&[(1, b"a", Some(b"1"))]);
        assert!(merge_chain(&[0x80], &[]).is_err()); // truncated varint count
        assert!(merge_chain(&good, &[&[0x01, 0x01]]).is_err()); // truncated entry
        // Unknown op byte.
        let mut w = ByteWriter::new();
        w.put_varint(1);
        w.put_u8(1);
        w.put_u8(1);
        w.put_raw(b"k");
        w.put_u8(9);
        let bad = w.freeze();
        assert!(matches!(
            read_entries(&bad),
            Err(CodecError::InvalidTag { context: "deltamap op", tag: 9 })
        ));
        // Trailing garbage after the declared entry count.
        let mut w = ByteWriter::new();
        w.put_varint(0);
        w.put_u8(7);
        assert!(read_entries(&w.freeze()).is_err());
    }

    #[test]
    fn streamed_put_matches_materialized_put() {
        let mut a = ByteWriter::new();
        write_put(&mut a, 3, b"key", b"value");
        let mut b = ByteWriter::new();
        let pos = write_put_header(&mut b, 3, b"key");
        b.put_raw(b"val");
        b.put_raw(b"ue");
        b.end_u32_len(pos);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
