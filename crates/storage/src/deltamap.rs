//! Sectioned key/value delta-map codec — the wire format of incremental
//! checkpoints.
//!
//! A snapshot image is a flat stream of entries over `(section, key)` pairs:
//! a varint entry count followed by, per entry, a one-byte section id, a
//! length-prefixed key (sections use fixed-width big-endian keys so byte-wise
//! lexicographic order equals numeric order), a one-byte op, and — for puts —
//! a `u32`-LE length-prefixed value. A **full image** contains only puts in
//! canonical `(section, key)` order; a **delta** contains puts for entries
//! mutated since the parent image and tombstones for entries removed.
//!
//! [`merge_chain`] applies deltas (oldest first) on top of a base image and
//! re-encodes the canonical full image — byte-identical to a full snapshot
//! taken at the same epoch, which is the property the engine's incremental
//! checkpointing tests pin down.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use bytes::Bytes;
use std::collections::BTreeMap;

/// Entry op: the `(section, key)` pair was removed since the parent image.
pub const OP_TOMBSTONE: u8 = 0;
/// Entry op: the `(section, key)` pair maps to the attached value.
pub const OP_PUT: u8 = 1;

/// Section id for overtaken in-flight records captured by an unaligned
/// checkpoint. Keys are `channel: u16 BE ++ seq: u32 BE` (per-channel capture
/// order), values an encoded `SentBuffer`; the id deliberately sorts after
/// every operator-state section (0–4) so canonical `(section, key)` order
/// keeps state entries and the in-flight section contiguous. Deltas ship
/// tombstones for the parent image's captured records that the new capture
/// did not re-take, so `merge_chain` never resurrects stale buffers.
pub const SEC_OVERTAKEN: u8 = 5;

/// One decoded entry, borrowing key/value bytes from the underlying image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryRef<'a> {
    pub section: u8,
    pub key: &'a [u8],
    /// `Some(value)` for a put, `None` for a tombstone.
    pub value: Option<&'a [u8]>,
}

/// Write a put entry's header (section, key, op, value-length placeholder)
/// and return the placeholder position. The caller streams the value into
/// `w` and then closes the entry with [`ByteWriter::end_u32_len`].
#[inline]
pub fn write_put_header(w: &mut ByteWriter, section: u8, key: &[u8]) -> usize {
    debug_assert!(key.len() <= u8::MAX as usize);
    w.put_u8(section);
    w.put_u8(key.len() as u8);
    w.put_raw(key);
    w.put_u8(OP_PUT);
    w.begin_u32_len()
}

/// Write a complete put entry with an already-materialized value.
pub fn write_put(w: &mut ByteWriter, section: u8, key: &[u8], value: &[u8]) {
    let pos = write_put_header(w, section, key);
    w.put_raw(value);
    w.end_u32_len(pos);
}

/// Write a tombstone entry (no value).
pub fn write_tombstone(w: &mut ByteWriter, section: u8, key: &[u8]) {
    debug_assert!(key.len() <= u8::MAX as usize);
    w.put_u8(section);
    w.put_u8(key.len() as u8);
    w.put_raw(key);
    w.put_u8(OP_TOMBSTONE);
}

/// Decode one entry from a reader positioned at an entry boundary (no
/// entry-count prefix). Public for the lsm segment reader, whose sparse
/// index points at raw entry offsets inside a segment payload.
pub fn read_one<'a>(r: &mut ByteReader<'a>) -> Result<EntryRef<'a>, CodecError> {
    read_entry(r)
}

fn read_entry<'a>(r: &mut ByteReader<'a>) -> Result<EntryRef<'a>, CodecError> {
    let section = r.get_u8()?;
    let klen = r.get_u8()? as usize;
    let key = r.get_raw(klen)?;
    let value = match r.get_u8()? {
        OP_TOMBSTONE => None,
        OP_PUT => {
            let vlen = r.get_u32_le()? as usize;
            Some(r.get_raw(vlen)?)
        }
        tag => return Err(CodecError::InvalidTag { context: "deltamap op", tag }),
    };
    Ok(EntryRef { section, key, value })
}

/// Decode a full image or delta into its entry list, in stored order.
pub fn read_entries(bytes: &[u8]) -> Result<Vec<EntryRef<'_>>, CodecError> {
    let mut r = ByteReader::new(bytes);
    let n = r.get_varint()? as usize;
    // Cap the pre-allocation so a corrupt count cannot balloon memory; the
    // per-entry EOF checks still reject short inputs.
    let mut out = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        out.push(read_entry(&mut r)?);
    }
    if !r.is_empty() {
        return Err(CodecError::InvalidTag { context: "deltamap trailing bytes", tag: 0 });
    }
    Ok(out)
}

/// Apply `deltas` (oldest first) on top of the full image `base` and encode
/// the resulting canonical full image: entries sorted by `(section, key)`,
/// all puts. Errors on any malformed layer rather than panicking — chain
/// reconstruction sits on the recovery path.
pub fn merge_chain<'a>(base: &'a [u8], deltas: &[&'a [u8]]) -> Result<Bytes, CodecError> {
    let mut layers: Vec<Vec<EntryRef<'a>>> = Vec::with_capacity(deltas.len() + 1);
    layers.push(read_entries(base)?);
    for d in deltas {
        layers.push(read_entries(d)?);
    }
    let mut map: BTreeMap<(u8, &[u8]), &[u8]> = BTreeMap::new();
    for layer in &layers {
        for e in layer {
            match e.value {
                Some(v) => {
                    map.insert((e.section, e.key), v);
                }
                None => {
                    map.remove(&(e.section, e.key));
                }
            }
        }
    }
    let total: usize =
        map.iter().map(|(&(_, k), &v)| 7 + k.len() + v.len()).sum::<usize>() + 10;
    let mut w = ByteWriter::with_capacity(total);
    w.put_varint(map.len() as u64);
    for (&(section, key), &value) in &map {
        write_put(&mut w, section, key, value);
    }
    Ok(w.freeze())
}

/// Fold `layers` (oldest first) into one image, like [`merge_chain`] but
/// with explicit control over tombstones. With `drop_tombstones = false` the
/// output *retains* a tombstone for every `(section, key)` whose newest entry
/// is a delete — required when compacting LSM levels that still have older
/// data beneath them, where dropping the tombstone would resurrect a deleted
/// key. With `drop_tombstones = true` the result is byte-identical to
/// `merge_chain(layers[0], &layers[1..])`.
pub fn fold_layers(layers: &[&[u8]], drop_tombstones: bool) -> Result<Bytes, CodecError> {
    let mut decoded: Vec<Vec<EntryRef<'_>>> = Vec::with_capacity(layers.len());
    for l in layers {
        decoded.push(read_entries(l)?);
    }
    let mut map: BTreeMap<(u8, &[u8]), Option<&[u8]>> = BTreeMap::new();
    for layer in &decoded {
        for e in layer {
            map.insert((e.section, e.key), e.value);
        }
    }
    if drop_tombstones {
        map.retain(|_, v| v.is_some());
    }
    let total: usize = map
        .iter()
        .map(|(&(_, k), v)| 7 + k.len() + v.map_or(0, <[u8]>::len))
        .sum::<usize>()
        + 10;
    let mut w = ByteWriter::with_capacity(total);
    w.put_varint(map.len() as u64);
    for (&(section, key), value) in &map {
        match value {
            Some(v) => write_put(&mut w, section, key, v),
            None => write_tombstone(&mut w, section, key),
        }
    }
    Ok(w.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestEntry<'a> = (u8, &'a [u8], Option<&'a [u8]>);

    fn image(entries: &[TestEntry<'_>]) -> Bytes {
        let mut w = ByteWriter::new();
        w.put_varint(entries.len() as u64);
        for &(section, key, value) in entries {
            match value {
                Some(v) => write_put(&mut w, section, key, v),
                None => write_tombstone(&mut w, section, key),
            }
        }
        w.freeze()
    }

    #[test]
    fn roundtrip_entries() {
        let img = image(&[(1, b"aa", Some(b"v1")), (2, b"bb", None)]);
        let es = read_entries(&img).unwrap();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0], EntryRef { section: 1, key: b"aa", value: Some(b"v1") });
        assert_eq!(es[1], EntryRef { section: 2, key: b"bb", value: None });
    }

    #[test]
    fn merge_applies_puts_and_tombstones_in_order() {
        let base = image(&[(1, b"a", Some(b"1")), (1, b"b", Some(b"2")), (2, b"c", Some(b"3"))]);
        let d1 = image(&[(1, b"b", None), (1, b"d", Some(b"4"))]);
        let d2 = image(&[(1, b"d", Some(b"5")), (2, b"c", None)]);
        let merged = merge_chain(&base, &[&d1, &d2]).unwrap();
        let expect = image(&[(1, b"a", Some(b"1")), (1, b"d", Some(b"5"))]);
        assert_eq!(merged, expect);
    }

    #[test]
    fn merge_of_base_alone_is_canonical_identity() {
        let base = image(&[(0, b"", Some(b"meta")), (1, b"k", Some(b"v"))]);
        assert_eq!(merge_chain(&base, &[]).unwrap(), base);
    }

    #[test]
    fn tombstone_of_absent_key_is_a_noop() {
        let base = image(&[(1, b"a", Some(b"1"))]);
        let d = image(&[(1, b"zz", None)]);
        assert_eq!(merge_chain(&base, &[&d]).unwrap(), base);
    }

    #[test]
    fn malformed_layers_error_not_panic() {
        let good = image(&[(1, b"a", Some(b"1"))]);
        assert!(merge_chain(&[0x80], &[]).is_err()); // truncated varint count
        assert!(merge_chain(&good, &[&[0x01, 0x01]]).is_err()); // truncated entry
        // Unknown op byte.
        let mut w = ByteWriter::new();
        w.put_varint(1);
        w.put_u8(1);
        w.put_u8(1);
        w.put_raw(b"k");
        w.put_u8(9);
        let bad = w.freeze();
        assert!(matches!(
            read_entries(&bad),
            Err(CodecError::InvalidTag { context: "deltamap op", tag: 9 })
        ));
        // Trailing garbage after the declared entry count.
        let mut w = ByteWriter::new();
        w.put_varint(0);
        w.put_u8(7);
        assert!(read_entries(&w.freeze()).is_err());
    }

    /// Strategy pieces for the overtaken-section property: an image mixes
    /// operator-state sections (0–4, short ascii keys) with zero or more
    /// SEC_OVERTAKEN entries keyed `channel u16 BE ++ seq u32 BE`.
    mod overtaken_props {
        use super::*;
        use proptest::prelude::*;

        type Owned = (u8, Vec<u8>, Option<Vec<u8>>);

        fn state_entry() -> impl Strategy<Value = Owned> {
            (
                0u8..=4,
                proptest::collection::vec(any::<u8>(), 1..8),
                proptest::collection::vec(any::<u8>(), 0..32),
            )
                .prop_map(|(s, k, v)| (s, k, Some(v)))
        }

        fn overtaken_entry() -> impl Strategy<Value = Owned> {
            (0u16..4, 0u32..16, proptest::collection::vec(any::<u8>(), 0..48)).prop_map(
                |(ch, seq, v)| {
                    let mut key = Vec::with_capacity(6);
                    key.extend_from_slice(&ch.to_be_bytes());
                    key.extend_from_slice(&seq.to_be_bytes());
                    (SEC_OVERTAKEN, key, Some(v))
                },
            )
        }

        fn canonical(entries: &[Owned]) -> Bytes {
            let mut map: BTreeMap<(u8, &[u8]), &[u8]> = BTreeMap::new();
            for (s, k, v) in entries {
                match v {
                    Some(v) => {
                        map.insert((*s, k.as_slice()), v.as_slice());
                    }
                    None => {
                        map.remove(&(*s, k.as_slice()));
                    }
                }
            }
            let mut w = ByteWriter::new();
            w.put_varint(map.len() as u64);
            for (&(section, key), &value) in &map {
                write_put(&mut w, section, key, value);
            }
            w.freeze()
        }

        proptest! {
            /// A canonical image carrying 0..N overtaken entries decodes and
            /// re-encodes byte-identically — the section is just entries to
            /// the codec, whether present or empty.
            #[test]
            fn roundtrip_byte_identity_with_overtaken_section(
                state in proptest::collection::vec(state_entry(), 0..12),
                overtaken in proptest::collection::vec(overtaken_entry(), 0..10),
            ) {
                let mut all = state;
                all.extend(overtaken);
                let img = canonical(&all);
                let decoded = read_entries(&img).unwrap();
                let mut w = ByteWriter::new();
                w.put_varint(decoded.len() as u64);
                for e in &decoded {
                    match e.value {
                        Some(v) => write_put(&mut w, e.section, e.key, v),
                        None => write_tombstone(&mut w, e.section, e.key),
                    }
                }
                prop_assert_eq!(w.freeze(), img);
            }

            /// Base + deltas that add, overwrite, and tombstone overtaken
            /// entries merge to exactly the canonical image of the fold —
            /// i.e. delta-shipped captures reconstruct bit-for-bit and
            /// tombstoned captures never resurface.
            #[test]
            fn merge_chain_identity_over_overtaken_deltas(
                base_state in proptest::collection::vec(state_entry(), 0..8),
                base_ot in proptest::collection::vec(overtaken_entry(), 0..6),
                delta_ot in proptest::collection::vec(overtaken_entry(), 0..6),
                drop_base_ot in any::<bool>(),
            ) {
                let mut base_entries = base_state.clone();
                base_entries.extend(base_ot.clone());
                let base = canonical(&base_entries);

                // Delta: new/overwritten captures, plus (optionally)
                // tombstones retiring every base capture — the hygiene the
                // task encoder emits so stale buffers can't be re-injected.
                let mut delta_entries: Vec<Owned> = delta_ot.clone();
                if drop_base_ot {
                    for (s, k, _) in &base_ot {
                        delta_entries.push((*s, k.clone(), None));
                    }
                }
                let delta = {
                    let mut w = ByteWriter::new();
                    w.put_varint(delta_entries.len() as u64);
                    for (s, k, v) in &delta_entries {
                        match v {
                            Some(v) => write_put(&mut w, *s, k, v),
                            None => write_tombstone(&mut w, *s, k),
                        }
                    }
                    w.freeze()
                };

                let mut folded = base_entries;
                folded.extend(delta_entries);
                let expect = canonical(&folded);
                prop_assert_eq!(merge_chain(&base, &[&delta]).unwrap(), expect);
            }
        }
    }

    #[test]
    fn sec_overtaken_sorts_after_state_sections() {
        // The canonical order property the task encoder relies on when it
        // assembles `state entries ++ overtaken entries` single-pass.
        const { assert!(SEC_OVERTAKEN > 4) };
        let base = image(&[(SEC_OVERTAKEN, b"\x00\x00\x00\x00\x00\x01", Some(b"buf"))]);
        let merged = merge_chain(&base, &[]).unwrap();
        assert_eq!(merged, base);
    }

    #[test]
    fn fold_layers_retains_tombstones_unless_dropped() {
        let base = image(&[(1, b"a", Some(b"1")), (1, b"b", Some(b"2"))]);
        let d1 = image(&[(1, b"b", None), (1, b"c", Some(b"3"))]);
        let kept = fold_layers(&[&base, &d1], false).unwrap();
        let expect_kept = image(&[(1, b"a", Some(b"1")), (1, b"b", None), (1, b"c", Some(b"3"))]);
        assert_eq!(kept, expect_kept);
        let dropped = fold_layers(&[&base, &d1], true).unwrap();
        assert_eq!(dropped, merge_chain(&base, &[&d1]).unwrap());
    }

    mod fold_props {
        use super::*;
        use proptest::prelude::*;

        fn layer() -> impl Strategy<Value = Vec<(u8, Vec<u8>, Option<Vec<u8>>)>> {
            proptest::collection::vec(
                (
                    0u8..=2,
                    proptest::collection::vec(0u8..4, 1..4),
                    proptest::option::of(proptest::collection::vec(any::<u8>(), 0..8)),
                ),
                0..8,
            )
        }

        proptest! {
            /// `fold_layers(.., true)` is byte-identical to `merge_chain` —
            /// the compaction-at-bottom fast path matches recovery-path
            /// reconstruction exactly.
            #[test]
            fn drop_tombstones_matches_merge_chain(
                layers in proptest::collection::vec(layer(), 1..5),
            ) {
                let encoded: Vec<Bytes> = layers.iter().map(|l| {
                    let mut w = ByteWriter::new();
                    w.put_varint(l.len() as u64);
                    for (s, k, v) in l {
                        match v {
                            Some(v) => write_put(&mut w, *s, k, v),
                            None => write_tombstone(&mut w, *s, k),
                        }
                    }
                    w.freeze()
                }).collect();
                let refs: Vec<&[u8]> = encoded.iter().map(|b| b.as_ref()).collect();
                let folded = fold_layers(&refs, true).unwrap();
                let merged = merge_chain(refs[0], &refs[1..]).unwrap();
                prop_assert_eq!(folded, merged);
            }

            /// Folding in two steps (with tombstones retained in the middle)
            /// then dropping equals folding once — compaction staging never
            /// changes the final image.
            #[test]
            fn staged_fold_equals_single_fold(
                layers in proptest::collection::vec(layer(), 2..6),
                split in 1usize..5,
            ) {
                let encoded: Vec<Bytes> = layers.iter().map(|l| {
                    let mut w = ByteWriter::new();
                    w.put_varint(l.len() as u64);
                    for (s, k, v) in l {
                        match v {
                            Some(v) => write_put(&mut w, *s, k, v),
                            None => write_tombstone(&mut w, *s, k),
                        }
                    }
                    w.freeze()
                }).collect();
                let refs: Vec<&[u8]> = encoded.iter().map(|b| b.as_ref()).collect();
                let split = split.min(refs.len() - 1);
                let mid = fold_layers(&refs[..split], false).unwrap();
                let mut staged: Vec<&[u8]> = vec![&mid];
                staged.extend_from_slice(&refs[split..]);
                prop_assert_eq!(
                    fold_layers(&staged, true).unwrap(),
                    fold_layers(&refs, true).unwrap()
                );
            }
        }
    }

    #[test]
    fn streamed_put_matches_materialized_put() {
        let mut a = ByteWriter::new();
        write_put(&mut a, 3, b"key", b"value");
        let mut b = ByteWriter::new();
        let pos = write_put_header(&mut b, 3, b"key");
        b.put_raw(b"val");
        b.put_raw(b"ue");
        b.end_u32_len(pos);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
