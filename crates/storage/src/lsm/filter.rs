//! Bloom-style key filter attached to each sealed segment.
//!
//! Point reads over a leveled tier probe every candidate segment whose key
//! range covers the target; without a filter each probe costs a modelled
//! block read. The filter answers "definitely absent" from memory so cold
//! probes skip the device entirely — the standard LSM read-amplification
//! fix. Double hashing (Kirsch–Mitzenmacher) derives all probe positions
//! from two FNV-1a-based hashes, keeping the filter deterministic and
//! seed-free.

/// Number of probe positions per key.
const PROBES: u32 = 4;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A fixed-size bit array sized at build time from the expected key count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyFilter {
    nbits: u64,
    words: Vec<u64>,
}

impl KeyFilter {
    /// Size the filter for `keys` expected insertions at `bits_per_key`.
    pub fn with_capacity(keys: u64, bits_per_key: u32) -> KeyFilter {
        let nbits = (keys.saturating_mul(bits_per_key as u64)).max(64);
        let words = vec![0u64; nbits.div_ceil(64) as usize];
        KeyFilter { nbits, words }
    }

    /// Rebuild from serialized parts (manifest replay).
    pub fn from_parts(nbits: u64, words: Vec<u64>) -> KeyFilter {
        KeyFilter { nbits, words }
    }

    #[inline]
    fn probe(&self, key: &[u8], i: u32) -> (usize, u64) {
        let h1 = fnv1a(key);
        // A second, independent hash derived by mixing; forced odd so the
        // probe sequence walks the whole bit space.
        let h2 = h1.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31) | 1;
        let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.nbits;
        ((bit / 64) as usize, 1u64 << (bit % 64))
    }

    pub fn insert(&mut self, key: &[u8]) {
        for i in 0..PROBES {
            let (word, mask) = self.probe(key, i);
            if let Some(w) = self.words.get_mut(word) {
                *w |= mask;
            }
        }
    }

    /// False negatives are impossible; false positives are expected at the
    /// configured bits-per-key rate.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        (0..PROBES).all(|i| {
            let (word, mask) = self.probe(key, i);
            self.words.get(word).is_some_and(|w| w & mask != 0)
        })
    }

    pub fn nbits(&self) -> u64 {
        self.nbits
    }

    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0u64..500).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut f = KeyFilter::with_capacity(keys.len() as u64, 10);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = KeyFilter::with_capacity(1000, 10);
        for i in 0u64..1000 {
            f.insert(&i.to_be_bytes());
        }
        let hits = (1_000_000u64..1_010_000).filter(|i| f.may_contain(&i.to_be_bytes())).count();
        // ~1% expected at 10 bits/key with 4 probes; 5% is a generous bound.
        assert!(hits < 500, "false positive rate too high: {hits}/10000");
    }

    #[test]
    fn parts_roundtrip() {
        let mut f = KeyFilter::with_capacity(10, 10);
        f.insert(b"alpha");
        let g = KeyFilter::from_parts(f.nbits(), f.words().to_vec());
        assert_eq!(f, g);
        assert!(g.may_contain(b"alpha"));
    }
}
