//! Crash-consistent segment manifest: an append-only log of tier-tree edits.
//!
//! Every structural change to the tier (flush, compaction, bulk load) is one
//! atomic manifest record: the segments it added (with full metadata — key
//! range, filter bits, sparse index) and the segment ids it removed. A
//! record is framed `u32-LE payload length ++ u32-LE FNV checksum ++
//! payload`; replay applies records in order and stops at the first
//! incomplete or corrupt frame, so a crash mid-append simply truncates to
//! the last complete edit — the tier tree is always the one some prefix of
//! edits produced, never a torn hybrid.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::lsm::filter::KeyFilter;
use crate::lsm::segment::SegmentMeta;
use crate::spill::SpillHandle;

/// One atomic tier-tree edit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ManifestEdit {
    pub added: Vec<SegmentMeta>,
    pub removed: Vec<u64>,
    /// Number of `added` segments that are bulk-load seeds (key-disjoint
    /// bottom-level chunks). Replay accumulates this so the in-place
    /// bottom-level compaction policy survives reopen.
    pub seeded: u64,
}

fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

fn encode_meta(w: &mut ByteWriter, m: &SegmentMeta) {
    w.put_varint(m.id);
    w.put_u8(m.level);
    w.put_varint(m.handle.0);
    w.put_varint(m.bytes);
    w.put_varint(m.entries);
    w.put_bytes(&m.min_key);
    w.put_bytes(&m.max_key);
    w.put_varint(m.filter.nbits());
    w.put_varint(m.filter.words().len() as u64);
    for &word in m.filter.words() {
        w.put_raw(&word.to_le_bytes());
    }
    w.put_varint(m.index.len() as u64);
    for (key, off) in &m.index {
        w.put_bytes(key);
        w.put_varint(*off as u64);
    }
}

fn decode_meta(r: &mut ByteReader<'_>) -> Result<SegmentMeta, CodecError> {
    let id = r.get_varint()?;
    let level = r.get_u8()?;
    let handle = SpillHandle(r.get_varint()?);
    let bytes = r.get_varint()?;
    let entries = r.get_varint()?;
    let min_key = r.get_bytes()?.to_vec();
    let max_key = r.get_bytes()?.to_vec();
    let nbits = r.get_varint()?;
    let nwords = r.get_varint()? as usize;
    let mut words = Vec::with_capacity(nwords.min(1 << 20));
    for _ in 0..nwords {
        let raw = r.get_raw(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(raw);
        words.push(u64::from_le_bytes(a));
    }
    let filter = KeyFilter::from_parts(nbits, words);
    let nindex = r.get_varint()? as usize;
    let mut index = Vec::with_capacity(nindex.min(1 << 20));
    for _ in 0..nindex {
        let key = r.get_bytes()?.to_vec();
        let off = r.get_varint()? as u32;
        index.push((key, off));
    }
    Ok(SegmentMeta { id, level, handle, bytes, entries, min_key, max_key, filter, index })
}

fn encode_edit(edit: &ManifestEdit) -> ByteWriter {
    let mut w = ByteWriter::new();
    w.put_varint(edit.added.len() as u64);
    for m in &edit.added {
        encode_meta(&mut w, m);
    }
    w.put_varint(edit.removed.len() as u64);
    for &id in &edit.removed {
        w.put_varint(id);
    }
    w.put_varint(edit.seeded);
    w
}

fn decode_edit(payload: &[u8]) -> Result<ManifestEdit, CodecError> {
    let mut r = ByteReader::new(payload);
    let nadd = r.get_varint()? as usize;
    let mut added = Vec::with_capacity(nadd.min(1 << 16));
    for _ in 0..nadd {
        added.push(decode_meta(&mut r)?);
    }
    let nrem = r.get_varint()? as usize;
    let mut removed = Vec::with_capacity(nrem.min(1 << 16));
    for _ in 0..nrem {
        removed.push(r.get_varint()?);
    }
    let seeded = r.get_varint()?;
    if !r.is_empty() {
        return Err(CodecError::InvalidTag { context: "manifest edit trailing bytes", tag: 0 });
    }
    Ok(ManifestEdit { added, removed, seeded })
}

/// The append-only manifest log.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    log: Vec<u8>,
    records: u64,
}

impl Manifest {
    pub fn new() -> Manifest {
        Manifest::default()
    }

    /// Continue an existing log (reopen path). The caller passes only the
    /// valid prefix that [`Manifest::replay`] accepted.
    pub fn from_bytes(log: Vec<u8>, records: u64) -> Manifest {
        Manifest { log, records }
    }

    pub fn append(&mut self, edit: &ManifestEdit) {
        let payload = encode_edit(edit);
        self.log.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.log.extend_from_slice(&fnv32(payload.as_slice()).to_le_bytes());
        self.log.extend_from_slice(payload.as_slice());
        self.records += 1;
    }

    pub fn bytes(&self) -> &[u8] {
        &self.log
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    /// Decode every complete, checksummed record from `bytes`. Returns the
    /// edits plus the length of the valid prefix — everything past it
    /// (torn frame, bad checksum, undecodable payload) is discarded, which
    /// is exactly the crash-recovery contract.
    pub fn replay(bytes: &[u8]) -> (Vec<ManifestEdit>, usize) {
        let mut edits = Vec::new();
        let mut pos = 0usize;
        while let Some(header) = bytes.get(pos..pos + 8) {
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&header[..4]);
            let len = u32::from_le_bytes(len4) as usize;
            let mut sum4 = [0u8; 4];
            sum4.copy_from_slice(&header[4..8]);
            let sum = u32::from_le_bytes(sum4);
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else { break };
            if fnv32(payload) != sum {
                break;
            }
            let Ok(edit) = decode_edit(payload) else { break };
            edits.push(edit);
            pos += 8 + len;
        }
        (edits, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, level: u8) -> SegmentMeta {
        let mut filter = KeyFilter::with_capacity(4, 10);
        filter.insert(b"\x01key");
        SegmentMeta {
            id,
            level,
            handle: SpillHandle(id + 100),
            bytes: 42,
            entries: 4,
            min_key: b"\x01a".to_vec(),
            max_key: b"\x01z".to_vec(),
            filter,
            index: vec![(b"\x01a".to_vec(), 1), (b"\x01m".to_vec(), 20)],
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let mut m = Manifest::new();
        let e1 = ManifestEdit { added: vec![meta(1, 0)], removed: vec![], seeded: 0 };
        let e2 = ManifestEdit { added: vec![meta(2, 1)], removed: vec![1], seeded: 0 };
        let e3 = ManifestEdit { added: vec![meta(3, 6), meta(4, 6)], removed: vec![], seeded: 2 };
        m.append(&e1);
        m.append(&e2);
        m.append(&e3);
        let (edits, valid) = Manifest::replay(m.bytes());
        assert_eq!(valid, m.bytes().len());
        assert_eq!(edits, vec![e1, e2, e3]);
    }

    #[test]
    fn replay_truncates_at_torn_tail() {
        let mut m = Manifest::new();
        let e1 = ManifestEdit { added: vec![meta(1, 0)], removed: vec![], seeded: 0 };
        m.append(&e1);
        let complete = m.bytes().len();
        let e2 = ManifestEdit { added: vec![meta(2, 0)], removed: vec![], seeded: 0 };
        m.append(&e2);
        // Crash mid-append: every proper prefix of the second record must
        // replay to exactly [e1].
        for cut in complete..m.bytes().len() {
            let (edits, valid) = Manifest::replay(&m.bytes()[..cut]);
            assert_eq!(valid, complete, "cut={cut}");
            assert_eq!(edits, vec![e1.clone()], "cut={cut}");
        }
    }

    #[test]
    fn replay_rejects_corrupt_checksum() {
        let mut m = Manifest::new();
        m.append(&ManifestEdit { added: vec![meta(1, 0)], removed: vec![], seeded: 0 });
        m.append(&ManifestEdit { added: vec![meta(2, 0)], removed: vec![], seeded: 0 });
        let first_len = {
            let (_, v) = Manifest::replay(&m.bytes()[..0]);
            assert_eq!(v, 0);
            let mut one = Manifest::new();
            one.append(&ManifestEdit { added: vec![meta(1, 0)], removed: vec![], seeded: 0 });
            one.bytes().len()
        };
        let mut corrupted = m.bytes().to_vec();
        // Flip a byte inside the second record's payload.
        let idx = first_len + 10;
        corrupted[idx] ^= 0xff;
        let (edits, valid) = Manifest::replay(&corrupted);
        assert_eq!(valid, first_len);
        assert_eq!(edits.len(), 1);
    }
}
