//! Tiered log-structured store: keyed state ≫ RAM with O(dirty) checkpoints.
//!
//! The engine's `StateStore` keeps hot rows in memory; everything else lives
//! here, as immutable deltamap-format segments on a [`SpillDevice`] behind a
//! bounded memtable:
//!
//! - **Writes** land in the memtable (`BTreeMap` over full keys — section
//!   byte ++ key bytes, so byte-lex order equals `(section, key)` order) and
//!   flush to a sealed level-0 segment when the byte budget fills.
//! - **Compaction** is size-tiered and whole-level: when a level exceeds the
//!   fanout it folds into a single segment one level down via
//!   [`deltamap::fold_layers`], retaining tombstones unless nothing older
//!   exists beneath (the invariant that makes fold order = recovery order).
//! - **Freshness invariant**: every segment in level *l* is newer than every
//!   segment in level *l+1*, and within a level the front is oldest. The
//!   fold order (deepest level first, front to back, memtable last) is
//!   therefore oldest-first, exactly what `merge_chain`/`fold_layers` want.
//! - **Point reads** prune by key range, then by a bloom-style
//!   [`KeyFilter`], then read one sparse-index block — never a whole
//!   segment.
//! - **Crash consistency**: every structural change is one atomic
//!   [`Manifest`] record; [`TieredStore::reopen`] replays the manifest
//!   prefix and lands on the exact tier tree those edits produced. The
//!   memtable is deliberately volatile — its contents ride in the engine's
//!   per-barrier dirty deltas, not in the manifest.
//! - **Bulk load** seeds key-disjoint chunks directly at the bottom level,
//!   skipping the write amplification of pushing 1e7 keys through L0. The
//!   bottom level compacts in place (tail-only while seeds remain) so seed
//!   chunks are never gratuitously rewritten.

pub mod filter;
pub mod manifest;
pub mod segment;

pub use filter::KeyFilter;
pub use manifest::{Manifest, ManifestEdit};
pub use segment::SegmentMeta;

use crate::codec::ByteWriter;
use crate::deltamap;
use crate::spill::SpillDevice;
use bytes::Bytes;
use clonos_sim::VirtualDuration;
use std::collections::BTreeMap;

/// Tuning knobs. Defaults suit the engine's per-task stores; the bench
/// shrinks `memtable_bytes` to force tiering at small scale.
#[derive(Clone, Copy, Debug)]
pub struct TieredConfig {
    /// Memtable byte budget; exceeding it seals a level-0 segment.
    pub memtable_bytes: u64,
    /// Compact a level into the next when it holds more segments than this.
    pub level_fanout: usize,
    /// Sparse-index stride: one index entry per this many segment entries.
    pub index_every: usize,
    /// Bloom filter budget per key.
    pub filter_bits_per_key: u32,
    /// The bottom level: bulk-load target, and where compaction stops.
    pub bulk_level: u8,
    /// Target payload size for bulk-load chunks.
    pub bulk_segment_bytes: u64,
}

impl Default for TieredConfig {
    fn default() -> Self {
        TieredConfig {
            memtable_bytes: 1 << 20,
            level_fanout: 4,
            index_every: 16,
            filter_bits_per_key: 10,
            bulk_level: 6,
            bulk_segment_bytes: 4 << 20,
        }
    }
}

/// Counters surfaced through the engine's `StateBackendStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    pub flushes: u64,
    pub compactions: u64,
    pub segments_created: u64,
    pub point_reads: u64,
    /// Probes answered "definitely absent" by a segment's key filter.
    pub filter_negatives: u64,
    /// Probes that passed the filter but found no entry in the block
    /// (bloom false positives plus genuine in-range gaps).
    pub filter_false_positives: u64,
}

/// The tiered store. All iteration is over `BTreeMap`s and `Vec`s in
/// deterministic order; I/O cost accrues into `pending_io` for the caller
/// to charge against its service queue.
#[derive(Clone, Debug)]
pub struct TieredStore {
    cfg: TieredConfig,
    device: SpillDevice,
    /// Full key -> Some(value) | None (tombstone).
    memtable: BTreeMap<Vec<u8>, Option<Bytes>>,
    mem_bytes: u64,
    /// `levels[0]` is newest; within a level the front is oldest.
    levels: Vec<Vec<SegmentMeta>>,
    manifest: Manifest,
    next_id: u64,
    /// Leading segments of the bottom level that came from `bulk_load`
    /// (key-disjoint seeds, exempt from in-place compaction).
    bulk_seeded: usize,
    /// Ids sealed since the last `take_sealed`, in seal order.
    pending: Vec<u64>,
    stats: TierStats,
    pending_io: VirtualDuration,
}

/// Per-entry memtable bookkeeping overhead added to key+value bytes.
const MEM_ENTRY_OVERHEAD: u64 = 16;

impl TieredStore {
    pub fn new(cfg: TieredConfig, device: SpillDevice, id_base: u64) -> TieredStore {
        let levels = vec![Vec::new(); cfg.bulk_level as usize + 1];
        TieredStore {
            cfg,
            device,
            memtable: BTreeMap::new(),
            mem_bytes: 0,
            levels,
            manifest: Manifest::new(),
            next_id: id_base,
            bulk_seeded: 0,
            pending: Vec::new(),
            stats: TierStats::default(),
            pending_io: VirtualDuration::ZERO,
        }
    }

    /// Rebuild the tier tree by replaying the manifest against a device that
    /// still holds the referenced payloads — the crash-recovery path. The
    /// memtable is empty by construction (its contents ride in checkpoint
    /// deltas, not the manifest).
    pub fn reopen(cfg: TieredConfig, manifest_bytes: &[u8], device: SpillDevice) -> TieredStore {
        let (edits, valid) = Manifest::replay(manifest_bytes);
        let bulk = cfg.bulk_level as usize;
        let mut levels: Vec<Vec<SegmentMeta>> = vec![Vec::new(); bulk + 1];
        let mut bulk_seeded = 0usize;
        let mut next_id = 0u64;
        for e in &edits {
            for &rid in &e.removed {
                for lv in &mut levels {
                    lv.retain(|m| m.id != rid);
                }
            }
            for m in &e.added {
                next_id = next_id.max(m.id + 1);
                let li = (m.level as usize).min(bulk);
                if let Some(lv) = levels.get_mut(li) {
                    lv.push(m.clone());
                }
            }
            bulk_seeded += e.seeded as usize;
        }
        let records = edits.len() as u64;
        let prefix = manifest_bytes.get(..valid).unwrap_or_default().to_vec();
        TieredStore {
            cfg,
            device,
            memtable: BTreeMap::new(),
            mem_bytes: 0,
            levels,
            manifest: Manifest::from_bytes(prefix, records),
            next_id,
            bulk_seeded,
            pending: Vec::new(),
            stats: TierStats::default(),
            pending_io: VirtualDuration::ZERO,
        }
    }

    fn full_key(section: u8, key: &[u8]) -> Vec<u8> {
        let mut fk = Vec::with_capacity(1 + key.len());
        fk.push(section);
        fk.extend_from_slice(key);
        fk
    }

    pub fn put(&mut self, section: u8, key: &[u8], value: Bytes) {
        self.write(Self::full_key(section, key), Some(value));
    }

    pub fn delete(&mut self, section: u8, key: &[u8]) {
        self.write(Self::full_key(section, key), None);
    }

    fn write(&mut self, fk: Vec<u8>, value: Option<Bytes>) {
        let klen = fk.len() as u64;
        let weight = |v: &Option<Bytes>| {
            MEM_ENTRY_OVERHEAD + klen + v.as_ref().map_or(0, |b| b.len() as u64)
        };
        let added = weight(&value);
        if let Some(old) = self.memtable.insert(fk, value) {
            self.mem_bytes = self.mem_bytes.saturating_sub(weight(&old));
        }
        self.mem_bytes += added;
        if self.mem_bytes >= self.cfg.memtable_bytes {
            self.flush();
        }
    }

    /// Point read. `None` means absent *or* tombstoned — the tier does not
    /// distinguish, and neither does the caller's fault path.
    pub fn get(&mut self, section: u8, key: &[u8]) -> Option<Bytes> {
        self.stats.point_reads += 1;
        let fk = Self::full_key(section, key);
        if let Some(v) = self.memtable.get(fk.as_slice()) {
            return v.clone();
        }
        // Newest first: L0 back-to-front, then each deeper level.
        for level in &self.levels {
            for m in level.iter().rev() {
                if !m.covers(&fk) {
                    continue;
                }
                if !m.filter.may_contain(&fk) {
                    self.stats.filter_negatives += 1;
                    continue;
                }
                let Some((start, end)) = m.block_bounds(&fk) else { continue };
                let Some((block, cost)) = self.device.read_range(m.handle, start, end - start)
                else {
                    continue;
                };
                self.pending_io = self.pending_io + cost;
                match segment::search_block(&block, &fk) {
                    Ok(Some(hit)) => return hit,
                    Ok(None) => self.stats.filter_false_positives += 1,
                    Err(_) => {}
                }
            }
        }
        None
    }

    /// Write the payload to the device and assemble its metadata. Returns
    /// `None` for empty or malformed payloads (nothing to add).
    fn build_meta(&mut self, payload: Bytes, level: u8) -> Option<SegmentMeta> {
        let parts =
            segment::scan_image(&payload, self.cfg.index_every, self.cfg.filter_bits_per_key)
                .ok()?;
        if parts.entries == 0 {
            return None;
        }
        let (handle, cost) = self.device.write(payload);
        self.pending_io = self.pending_io + cost;
        let id = self.next_id;
        self.next_id += 1;
        Some(SegmentMeta {
            id,
            level,
            handle,
            bytes: parts.bytes,
            entries: parts.entries,
            min_key: parts.min_key,
            max_key: parts.max_key,
            filter: parts.filter,
            index: parts.index,
        })
    }

    /// Seal the memtable into a level-0 segment. Returns false when there
    /// was nothing to flush.
    pub fn flush(&mut self) -> bool {
        if self.memtable.is_empty() {
            return false;
        }
        let mut w = ByteWriter::with_capacity(self.mem_bytes as usize + 16);
        w.put_varint(self.memtable.len() as u64);
        for (fk, v) in &self.memtable {
            let (&sec, key) = fk.split_first().unwrap_or((&0, &[]));
            match v {
                Some(val) => deltamap::write_put(&mut w, sec, key, val),
                None => deltamap::write_tombstone(&mut w, sec, key),
            }
        }
        let payload = w.freeze();
        self.memtable.clear();
        self.mem_bytes = 0;
        self.stats.flushes += 1;
        if let Some(meta) = self.build_meta(payload, 0) {
            self.manifest.append(&ManifestEdit {
                added: vec![meta.clone()],
                removed: vec![],
                seeded: 0,
            });
            self.pending.push(meta.id);
            self.stats.segments_created += 1;
            if let Some(l0) = self.levels.get_mut(0) {
                l0.push(meta);
            }
        }
        self.maybe_compact();
        true
    }

    fn maybe_compact(&mut self) {
        let bulk = self.cfg.bulk_level as usize;
        for l in 0..bulk {
            if self.levels.get(l).is_some_and(|lv| lv.len() > self.cfg.level_fanout) {
                self.compact_into_next(l);
            }
        }
        let tail_limit = self.bulk_seeded + 2 * self.cfg.level_fanout;
        if self.levels.get(bulk).is_some_and(|lv| lv.len() > tail_limit) {
            self.compact_bulk_tail();
        }
    }

    /// Fold every segment of level `l` into one segment appended to level
    /// `l+1`. Tombstones are dropped only when no older data exists beneath.
    fn compact_into_next(&mut self, l: usize) {
        let victims = match self.levels.get_mut(l) {
            Some(lv) => std::mem::take(lv),
            None => return,
        };
        let deeper_empty = self.levels.iter().skip(l + 1).all(Vec::is_empty);
        let Some(folded) = self.fold_victims(&victims, deeper_empty) else {
            if let Some(lv) = self.levels.get_mut(l) {
                *lv = victims;
            }
            return;
        };
        self.finish_compaction(victims, folded, (l + 1) as u8, l + 1);
    }

    /// In-place compaction of the bottom level's non-seed tail. While bulk
    /// seeds remain in front (older data), tombstones must be retained.
    fn compact_bulk_tail(&mut self) {
        let bulk = self.cfg.bulk_level as usize;
        let seeds = self.bulk_seeded;
        let victims = match self.levels.get_mut(bulk) {
            Some(lv) if lv.len() > seeds => lv.split_off(seeds),
            _ => return,
        };
        let drop_tombstones = seeds == 0;
        let Some(folded) = self.fold_victims(&victims, drop_tombstones) else {
            if let Some(lv) = self.levels.get_mut(bulk) {
                lv.extend(victims);
            }
            return;
        };
        self.finish_compaction(victims, folded, bulk as u8, bulk);
    }

    /// Read victim payloads (oldest first) and fold them into one image.
    /// `None` signals a decode failure — the caller restores the victims.
    fn fold_victims(&mut self, victims: &[SegmentMeta], drop_tombstones: bool) -> Option<Bytes> {
        let mut payloads = Vec::with_capacity(victims.len());
        for m in victims {
            let (b, cost) = self.device.read(m.handle)?;
            self.pending_io = self.pending_io + cost;
            payloads.push(b);
        }
        let refs: Vec<&[u8]> = payloads.iter().map(|b| b.as_ref()).collect();
        deltamap::fold_layers(&refs, drop_tombstones).ok()
    }

    fn finish_compaction(
        &mut self,
        victims: Vec<SegmentMeta>,
        folded: Bytes,
        level: u8,
        level_idx: usize,
    ) {
        let removed: Vec<u64> = victims.iter().map(|m| m.id).collect();
        for m in &victims {
            self.device.free(m.handle);
        }
        // A victim sealed but never shipped is subsumed by the fold; drop
        // it from the pending-publish set so acks only reference live ids.
        self.pending.retain(|id| !removed.contains(id));
        let mut edit = ManifestEdit { added: vec![], removed, seeded: 0 };
        if let Some(meta) = self.build_meta(folded, level) {
            edit.added.push(meta.clone());
            self.pending.push(meta.id);
            self.stats.segments_created += 1;
            if let Some(lv) = self.levels.get_mut(level_idx) {
                lv.push(meta);
            }
        }
        self.manifest.append(&edit);
        self.stats.compactions += 1;
    }

    /// Seed sorted, key-disjoint `(full key, value)` pairs directly into
    /// bottom-level chunks — the fast path for loading a restored image or
    /// a benchmark corpus without pushing everything through L0. Must only
    /// be called on a store with no overlapping data.
    pub fn bulk_load<I: IntoIterator<Item = (Vec<u8>, Bytes)>>(&mut self, entries: I) {
        let bulk = self.cfg.bulk_level;
        let mut payloads = Vec::new();
        let mut body = ByteWriter::new();
        let mut count = 0u64;
        let seal = |body: &mut ByteWriter, count: &mut u64, payloads: &mut Vec<Bytes>| {
            if *count == 0 {
                return;
            }
            let mut w = ByteWriter::with_capacity(body.len() + 10);
            w.put_varint(*count);
            w.put_raw(body.as_slice());
            payloads.push(w.freeze());
            body.clear();
            *count = 0;
        };
        for (fk, val) in entries {
            let (&sec, key) = fk.split_first().unwrap_or((&0, &[]));
            deltamap::write_put(&mut body, sec, key, &val);
            count += 1;
            if body.len() as u64 >= self.cfg.bulk_segment_bytes {
                seal(&mut body, &mut count, &mut payloads);
            }
        }
        seal(&mut body, &mut count, &mut payloads);
        let mut metas = Vec::with_capacity(payloads.len());
        for p in payloads {
            if let Some(meta) = self.build_meta(p, bulk) {
                self.pending.push(meta.id);
                self.stats.segments_created += 1;
                if let Some(lv) = self.levels.get_mut(bulk as usize) {
                    lv.push(meta.clone());
                }
                metas.push(meta);
            }
        }
        if metas.is_empty() {
            return;
        }
        self.bulk_seeded += metas.len();
        let seeded = metas.len() as u64;
        self.manifest.append(&ManifestEdit { added: metas, removed: vec![], seeded });
    }

    /// Drain segments sealed since the last call, with payloads — what a
    /// checkpoint ack ships to the snapshot store (each payload exactly
    /// once).
    pub fn take_sealed(&mut self) -> Vec<(u64, Bytes)> {
        let ids = std::mem::take(&mut self.pending);
        ids.into_iter()
            .filter_map(|id| {
                let m = self.levels.iter().flatten().find(|m| m.id == id)?;
                Some((id, self.device.peek(m.handle)?.clone()))
            })
            .collect()
    }

    /// Live segment ids in fold order (oldest first: deepest level first,
    /// front to back). A checkpoint's authoritative segment reference list.
    pub fn live_ids(&self) -> Vec<u64> {
        self.levels.iter().rev().flat_map(|l| l.iter().map(|m| m.id)).collect()
    }

    /// Canonical fold of the whole tier (segments oldest-first, memtable
    /// last), tombstones resolved. Reads via `peek` so observing the tier
    /// is free — this is the oracle/digest path.
    pub fn fold_entries(&self) -> BTreeMap<Vec<u8>, Bytes> {
        let mut map: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
        for level in self.levels.iter().rev() {
            for m in level {
                let Some(payload) = self.device.peek(m.handle) else { continue };
                let Ok(entries) = deltamap::read_entries(payload) else { continue };
                for e in entries {
                    let mut fk = Vec::with_capacity(1 + e.key.len());
                    fk.push(e.section);
                    fk.extend_from_slice(e.key);
                    match e.value {
                        Some(v) => {
                            map.insert(fk, Bytes::copy_from_slice(v));
                        }
                        None => {
                            map.remove(&fk);
                        }
                    }
                }
            }
        }
        for (fk, v) in &self.memtable {
            match v {
                Some(b) => {
                    map.insert(fk.clone(), b.clone());
                }
                None => {
                    map.remove(fk);
                }
            }
        }
        map
    }

    /// Modelled I/O accrued since the last call — the caller charges it to
    /// its service queue.
    pub fn take_io(&mut self) -> VirtualDuration {
        std::mem::replace(&mut self.pending_io, VirtualDuration::ZERO)
    }

    pub fn stats(&self) -> TierStats {
        self.stats
    }

    pub fn segment_count(&self) -> u64 {
        self.levels.iter().map(|l| l.len() as u64).sum()
    }

    pub fn segment_bytes(&self) -> u64 {
        self.levels.iter().flatten().map(|m| m.bytes).sum()
    }

    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    pub fn memtable_bytes(&self) -> u64 {
        self.mem_bytes
    }

    pub fn manifest_bytes(&self) -> &[u8] {
        self.manifest.bytes()
    }

    pub fn manifest_records(&self) -> u64 {
        self.manifest.records()
    }

    pub fn device(&self) -> &SpillDevice {
        &self.device
    }

    /// The tier tree, for replay-identity assertions in tests.
    pub fn levels(&self) -> &[Vec<SegmentMeta>] {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TieredConfig {
        TieredConfig {
            memtable_bytes: 256,
            level_fanout: 2,
            index_every: 4,
            filter_bits_per_key: 10,
            bulk_level: 3,
            bulk_segment_bytes: 512,
        }
    }

    fn store() -> TieredStore {
        TieredStore::new(small_cfg(), SpillDevice::new(), 0)
    }

    fn k(i: u64) -> [u8; 8] {
        i.to_be_bytes()
    }

    #[test]
    fn read_your_writes_through_memtable_and_segments() {
        let mut s = store();
        for i in 0..100u64 {
            s.put(1, &k(i), Bytes::from(format!("v{i}").into_bytes()));
        }
        s.flush();
        for i in 0..100u64 {
            assert_eq!(s.get(1, &k(i)), Some(Bytes::from(format!("v{i}").into_bytes())), "key {i}");
        }
        assert_eq!(s.get(1, &k(500)), None);
        assert!(s.stats().flushes >= 1);
    }

    #[test]
    fn newest_write_wins_across_levels() {
        let mut s = store();
        s.put(1, &k(7), Bytes::from_static(b"old"));
        s.flush();
        s.put(1, &k(7), Bytes::from_static(b"new"));
        s.flush();
        assert_eq!(s.get(1, &k(7)), Some(Bytes::from_static(b"new")));
    }

    #[test]
    fn tombstones_shadow_older_levels_and_survive_compaction() {
        let mut s = store();
        for i in 0..40u64 {
            s.put(1, &k(i), Bytes::from(vec![b'x'; 16]));
        }
        s.flush();
        s.delete(1, &k(5));
        s.flush();
        assert_eq!(s.get(1, &k(5)), None);
        // Force compactions; the delete must not resurrect.
        for round in 0..8u64 {
            for i in 40..60u64 {
                s.put(1, &k(i), Bytes::from(vec![b'y'; 16 + round as usize]));
            }
            s.flush();
        }
        assert!(s.stats().compactions > 0);
        assert_eq!(s.get(1, &k(5)), None);
        assert_eq!(s.get(1, &k(6)), Some(Bytes::from(vec![b'x'; 16])));
    }

    #[test]
    fn fold_entries_matches_model() {
        let mut s = store();
        let mut model: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
        for i in 0..120u64 {
            let key = k(i % 37);
            if i % 5 == 4 {
                s.delete(1, &key);
                model.remove(&TieredStore::full_key(1, &key));
            } else {
                let v = Bytes::from(format!("val{i}").into_bytes());
                s.put(1, &key, v.clone());
                model.insert(TieredStore::full_key(1, &key), v);
            }
            if i % 13 == 0 {
                s.flush();
            }
        }
        assert_eq!(s.fold_entries(), model);
    }

    #[test]
    fn bulk_load_seeds_bottom_level_and_serves_reads() {
        let mut s = store();
        let entries: Vec<(Vec<u8>, Bytes)> = (0..200u64)
            .map(|i| (TieredStore::full_key(1, &k(i)), Bytes::from(format!("bulk{i}").into_bytes())))
            .collect();
        s.bulk_load(entries);
        let bulk = small_cfg().bulk_level as usize;
        assert!(s.levels()[bulk].len() > 1, "expected multiple seed chunks");
        assert_eq!(s.get(1, &k(150)), Some(Bytes::from_static(b"bulk150")));
        // Overwrites through the normal path shadow the seeds.
        s.put(1, &k(150), Bytes::from_static(b"hot"));
        s.flush();
        assert_eq!(s.get(1, &k(150)), Some(Bytes::from_static(b"hot")));
        s.delete(1, &k(151));
        s.flush();
        assert_eq!(s.get(1, &k(151)), None);
    }

    #[test]
    fn reopen_reconstructs_identical_tier_tree() {
        let mut s = store();
        s.bulk_load(
            (0..100u64).map(|i| (TieredStore::full_key(1, &k(i)), Bytes::from(format!("b{i}").into_bytes()))),
        );
        for round in 0..6u64 {
            for i in 0..30u64 {
                s.put(1, &k(i), Bytes::from(format!("r{round}v{i}").into_bytes()));
            }
            s.delete(1, &k(round));
            s.flush();
        }
        let reopened =
            TieredStore::reopen(small_cfg(), s.manifest_bytes(), s.device().clone());
        assert_eq!(reopened.levels(), s.levels());
        let mut r = reopened;
        // Memtable was empty at "crash" (we flushed), so folds agree.
        assert_eq!(r.fold_entries(), s.fold_entries());
        assert_eq!(r.get(1, &k(3)), s.get(1, &k(3)));
    }

    #[test]
    fn take_sealed_ships_each_payload_once_and_live_ids_cover_tree() {
        let mut s = store();
        for i in 0..50u64 {
            s.put(1, &k(i), Bytes::from(vec![b'z'; 20]));
        }
        s.flush();
        let sealed = s.take_sealed();
        assert!(!sealed.is_empty());
        let live = s.live_ids();
        for (id, payload) in &sealed {
            assert!(live.contains(id));
            assert!(!payload.is_empty());
        }
        // Already drained: nothing new without further writes.
        assert!(s.take_sealed().is_empty());
        // Every live id has exactly one meta in the tree.
        let mut seen = std::collections::BTreeSet::new();
        for id in &live {
            assert!(seen.insert(*id), "duplicate live id {id}");
        }
        assert_eq!(live.len() as u64, s.segment_count());
    }

    #[test]
    fn io_is_charged_for_reads_and_writes() {
        let mut s = store();
        for i in 0..100u64 {
            s.put(1, &k(i), Bytes::from(vec![b'q'; 32]));
        }
        s.flush();
        assert!(s.take_io() > VirtualDuration::ZERO);
        let _ = s.get(1, &k(42));
        assert!(s.take_io() > VirtualDuration::ZERO);
        // Oracle fold is free.
        let _ = s.fold_entries();
        assert_eq!(s.take_io(), VirtualDuration::ZERO);
    }
}
