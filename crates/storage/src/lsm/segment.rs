//! Immutable sorted segments — the on-"disk" unit of the tiered store.
//!
//! A segment payload **is** a deltamap image: a varint entry count followed
//! by canonical `(section, key)`-ordered entries, tombstones included. That
//! makes flush (encode the memtable) and compaction (`fold_layers` over
//! payloads) produce segments directly, and lets recovery reuse
//! `merge_chain` semantics unchanged. Alongside the payload each segment
//! carries in-memory metadata: a key range for pruning, a bloom-style
//! [`KeyFilter`], and a sparse index of every Nth entry's payload offset so
//! point reads touch one block instead of the whole segment.
//!
//! Keys here are *full keys*: `section byte ++ key bytes`. Because the
//! section byte leads, byte-lexicographic order over full keys equals the
//! deltamap's `(section, key)` order.

use crate::codec::{ByteReader, CodecError};
use crate::deltamap;
use crate::lsm::filter::KeyFilter;
use crate::spill::SpillHandle;
use bytes::Bytes;

/// Metadata for one sealed segment. The payload lives on the spill device
/// under `handle`; everything needed to *decide* whether to read it lives
/// here (and in the manifest, so it survives reopen).
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentMeta {
    pub id: u64,
    pub level: u8,
    pub handle: SpillHandle,
    /// Payload length in bytes.
    pub bytes: u64,
    /// Entry count (puts + tombstones).
    pub entries: u64,
    /// Smallest full key in the segment.
    pub min_key: Vec<u8>,
    /// Largest full key in the segment.
    pub max_key: Vec<u8>,
    pub filter: KeyFilter,
    /// Sparse index: `(first full key of block, payload offset of block)`.
    /// The first entry is always indexed, so a covered lookup always finds
    /// a block.
    pub index: Vec<(Vec<u8>, u32)>,
}

impl SegmentMeta {
    /// Range prune: can `fk` possibly be in this segment?
    pub fn covers(&self, fk: &[u8]) -> bool {
        self.min_key.as_slice() <= fk && fk <= self.max_key.as_slice()
    }

    /// Byte bounds `[start, end)` of the sparse-index block that would hold
    /// `fk`. `None` when the segment is empty or `fk` sorts before the
    /// first entry.
    pub fn block_bounds(&self, fk: &[u8]) -> Option<(usize, usize)> {
        let i = match self.index.binary_search_by(|(k, _)| k.as_slice().cmp(fk)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let start = self.index.get(i)?.1 as usize;
        let end = self.index.get(i + 1).map_or(self.bytes as usize, |&(_, o)| o as usize);
        Some((start, end))
    }
}

/// Scan results of [`scan_image`]: everything for a [`SegmentMeta`] except
/// identity and placement, which the store assigns.
pub struct SegmentParts {
    pub bytes: u64,
    pub entries: u64,
    pub min_key: Vec<u8>,
    pub max_key: Vec<u8>,
    pub filter: KeyFilter,
    pub index: Vec<(Vec<u8>, u32)>,
}

/// Single pass over a deltamap-image payload, building filter, sparse index
/// and key range. Errors on malformed input (a segment is only ever built
/// from images we encoded ourselves, but compaction folds go through the
/// same decoder, so stay total).
pub fn scan_image(
    payload: &[u8],
    index_every: usize,
    bits_per_key: u32,
) -> Result<SegmentParts, CodecError> {
    let mut r = ByteReader::new(payload);
    let n = r.get_varint()?;
    let mut filter = KeyFilter::with_capacity(n, bits_per_key);
    let mut index = Vec::with_capacity((n as usize / index_every.max(1)) + 1);
    let mut min_key = Vec::new();
    let mut max_key = Vec::new();
    let every = index_every.max(1);
    for i in 0..n {
        let off = r.position() as u32;
        let e = deltamap::read_one(&mut r)?;
        let mut fk = Vec::with_capacity(1 + e.key.len());
        fk.push(e.section);
        fk.extend_from_slice(e.key);
        filter.insert(&fk);
        if i == 0 {
            min_key = fk.clone();
        }
        if (i as usize).is_multiple_of(every) {
            index.push((fk.clone(), off));
        }
        max_key = fk;
    }
    if !r.is_empty() {
        return Err(CodecError::InvalidTag { context: "segment trailing bytes", tag: 0 });
    }
    Ok(SegmentParts {
        bytes: payload.len() as u64,
        entries: n,
        min_key,
        max_key,
        filter,
        index,
    })
}

/// Decode a sparse-index block and look `fk` up in it.
///
/// Returns `Ok(None)` when the key is not in the block,
/// `Ok(Some(None))` for a tombstone, `Ok(Some(Some(value)))` for a put.
pub fn search_block(block: &[u8], fk: &[u8]) -> Result<Option<Option<Bytes>>, CodecError> {
    let mut r = ByteReader::new(block);
    while !r.is_empty() {
        let e = deltamap::read_one(&mut r)?;
        let (sec, key) = match fk.split_first() {
            Some(p) => p,
            None => return Ok(None),
        };
        match e.section.cmp(sec).then_with(|| e.key.cmp(key)) {
            std::cmp::Ordering::Less => continue,
            std::cmp::Ordering::Equal => {
                return Ok(Some(e.value.map(Bytes::copy_from_slice)));
            }
            std::cmp::Ordering::Greater => return Ok(None),
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ByteWriter;

    type TestEntry<'a> = (u8, &'a [u8], Option<&'a [u8]>);

    fn image(entries: &[TestEntry<'_>]) -> Bytes {
        let mut w = ByteWriter::new();
        w.put_varint(entries.len() as u64);
        for &(section, key, value) in entries {
            match value {
                Some(v) => deltamap::write_put(&mut w, section, key, v),
                None => deltamap::write_tombstone(&mut w, section, key),
            }
        }
        w.freeze()
    }

    fn fk(section: u8, key: &[u8]) -> Vec<u8> {
        let mut v = vec![section];
        v.extend_from_slice(key);
        v
    }

    #[test]
    fn scan_builds_range_index_and_filter() {
        let img = image(&[
            (1, b"aa", Some(b"1")),
            (1, b"bb", None),
            (1, b"cc", Some(b"3")),
            (2, b"dd", Some(b"4")),
            (2, b"ee", Some(b"5")),
        ]);
        let p = scan_image(&img, 2, 10).unwrap();
        assert_eq!(p.entries, 5);
        assert_eq!(p.min_key, fk(1, b"aa"));
        assert_eq!(p.max_key, fk(2, b"ee"));
        // Entries 0, 2, 4 are indexed.
        assert_eq!(p.index.len(), 3);
        assert_eq!(p.index[0].0, fk(1, b"aa"));
        assert_eq!(p.index[1].0, fk(1, b"cc"));
        assert_eq!(p.index[2].0, fk(2, b"ee"));
        for (s, k) in [(1u8, b"aa".as_slice()), (1, b"bb"), (2, b"ee")] {
            assert!(p.filter.may_contain(&fk(s, k)));
        }
    }

    #[test]
    fn block_lookup_finds_puts_tombstones_and_gaps() {
        let img = image(&[
            (1, b"aa", Some(b"1")),
            (1, b"bb", None),
            (1, b"cc", Some(b"3")),
            (2, b"dd", Some(b"4")),
            (2, b"ee", Some(b"5")),
        ]);
        let p = scan_image(&img, 2, 10).unwrap();
        let meta = SegmentMeta {
            id: 0,
            level: 0,
            handle: SpillHandle(0),
            bytes: p.bytes,
            entries: p.entries,
            min_key: p.min_key,
            max_key: p.max_key,
            filter: p.filter,
            index: p.index,
        };
        let probe = |target: &[u8]| -> Option<Option<Bytes>> {
            let (start, end) = meta.block_bounds(target)?;
            search_block(&img[start..end], target).unwrap()
        };
        assert_eq!(probe(&fk(1, b"aa")), Some(Some(Bytes::from_static(b"1"))));
        assert_eq!(probe(&fk(1, b"bb")), Some(None)); // tombstone
        assert_eq!(probe(&fk(2, b"ee")), Some(Some(Bytes::from_static(b"5"))));
        assert_eq!(probe(&fk(1, b"ab")), None); // gap inside range
        assert_eq!(probe(&fk(0, b"aa")), None); // before min
        assert_eq!(probe(&fk(3, b"zz")), None); // past max: lands in last block, not found
    }

    #[test]
    fn scan_rejects_malformed_images() {
        assert!(scan_image(&[0x80], 4, 10).is_err()); // truncated varint
        let mut good = image(&[(1, b"a", Some(b"1"))]).to_vec();
        good.push(0); // trailing byte
        assert!(scan_image(&good, 4, 10).is_err());
    }
}
