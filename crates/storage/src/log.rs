//! A durable, partitioned, offset-addressable record log — the in-process
//! substitute for the Kafka cluster the paper uses as source and sink.
//!
//! Guarantees mirrored from Kafka:
//! - per-partition FIFO append order, records addressed by dense offsets;
//! - replayable reads from any offset (sources rewind here on global
//!   rollback);
//! - an optional *metadata* side channel per record: Clonos' low-latency
//!   exactly-once output (§5.5) piggybacks serialized determinants on records
//!   sent to the downstream system, which must "store these determinants and
//!   be able to return them when requested". [`LogPartition::last_meta`]
//!   implements that query, letting a recovering sink deduplicate output it
//!   already committed.

use bytes::Bytes;

/// Offset of a record within a partition.
pub type Offset = u64;

/// One appended record.
#[derive(Clone, Debug)]
pub struct LogRecord {
    pub offset: Offset,
    pub payload: Bytes,
    /// Producer-attached metadata (e.g. `(producer, epoch, seq)` determinant
    /// triplet for exactly-once sinks). `None` for plain records.
    pub meta: Option<Bytes>,
}

/// A single FIFO partition.
#[derive(Default, Debug)]
pub struct LogPartition {
    records: Vec<LogRecord>,
    bytes: u64,
}

impl LogPartition {
    pub fn append(&mut self, payload: Bytes) -> Offset {
        self.append_with_meta(payload, None)
    }

    pub fn append_with_meta(&mut self, payload: Bytes, meta: Option<Bytes>) -> Offset {
        let offset = self.records.len() as Offset;
        self.bytes += payload.len() as u64;
        self.records.push(LogRecord { offset, payload, meta });
        offset
    }

    /// Next offset to be assigned (== number of records).
    pub fn end_offset(&self) -> Offset {
        self.records.len() as Offset
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    pub fn get(&self, offset: Offset) -> Option<&LogRecord> {
        self.records.get(offset as usize)
    }

    /// Read up to `max` records starting at `from`.
    pub fn fetch(&self, from: Offset, max: usize) -> &[LogRecord] {
        let start = (from as usize).min(self.records.len());
        let end = (start + max).min(self.records.len());
        &self.records[start..end]
    }

    /// The most recent record whose metadata satisfies `pred` — the §5.5
    /// "return the determinants when requested" query. Scans from the tail,
    /// since a recovering sink's records are near the end.
    pub fn last_meta(&self, pred: impl Fn(&[u8]) -> bool) -> Option<&LogRecord> {
        self.records.iter().rev().find(|r| r.meta.as_deref().is_some_and(&pred))
    }

    /// All payloads (test/verification helper).
    pub fn payloads(&self) -> impl Iterator<Item = &Bytes> {
        self.records.iter().map(|r| &r.payload)
    }
}

/// A topic: a set of partitions.
#[derive(Debug)]
pub struct DurableLog {
    name: String,
    partitions: Vec<LogPartition>,
}

impl DurableLog {
    pub fn new(name: impl Into<String>, partitions: usize) -> DurableLog {
        assert!(partitions > 0, "a log needs at least one partition");
        DurableLog {
            name: name.into(),
            partitions: (0..partitions).map(|_| LogPartition::default()).collect(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn partition(&self, p: usize) -> &LogPartition {
        &self.partitions[p]
    }

    pub fn partition_mut(&mut self, p: usize) -> &mut LogPartition {
        &mut self.partitions[p]
    }

    /// Total records across partitions.
    pub fn total_records(&self) -> u64 {
        self.partitions.iter().map(|p| p.end_offset()).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.total_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn offsets_are_dense_and_fifo() {
        let mut log = DurableLog::new("t", 2);
        assert_eq!(log.partition_mut(0).append(b("a")), 0);
        assert_eq!(log.partition_mut(0).append(b("b")), 1);
        assert_eq!(log.partition_mut(1).append(b("c")), 0);
        let p0 = log.partition(0);
        assert_eq!(p0.end_offset(), 2);
        assert_eq!(p0.get(0).unwrap().payload, b("a"));
        assert_eq!(p0.get(1).unwrap().payload, b("b"));
        assert!(p0.get(2).is_none());
        assert_eq!(log.total_records(), 3);
    }

    #[test]
    fn fetch_is_bounded_and_replayable() {
        let mut log = DurableLog::new("t", 1);
        for i in 0..10 {
            log.partition_mut(0).append(b(&i.to_string()));
        }
        let batch = log.partition(0).fetch(3, 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].offset, 3);
        // Re-reading the same range yields the same records (replayability).
        let again = log.partition(0).fetch(3, 4);
        assert_eq!(again[0].payload, batch[0].payload);
        // Past the end: empty, not a panic.
        assert!(log.partition(0).fetch(100, 5).is_empty());
        // Partial tail.
        assert_eq!(log.partition(0).fetch(8, 5).len(), 2);
    }

    #[test]
    fn meta_side_channel_query() {
        let mut log = DurableLog::new("out", 1);
        let p = log.partition_mut(0);
        p.append_with_meta(b("x"), Some(b("sink1:e0:0")));
        p.append_with_meta(b("y"), Some(b("sink2:e0:0")));
        p.append_with_meta(b("z"), Some(b("sink1:e0:1")));
        p.append(b("plain"));
        let last = p.last_meta(|m| m.starts_with(b"sink1")).unwrap();
        assert_eq!(last.payload, b("z"));
        assert!(p.last_meta(|m| m.starts_with(b"sink9")).is_none());
    }

    #[test]
    fn byte_accounting() {
        let mut log = DurableLog::new("t", 1);
        log.partition_mut(0).append(b("abcd"));
        log.partition_mut(0).append(b("ef"));
        assert_eq!(log.total_bytes(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = DurableLog::new("t", 0);
    }
}
