//! Checkpoint snapshot store — the HDFS substitute.
//!
//! Stores operator-state snapshots keyed by `(checkpoint id, task key)` and
//! models the transfer cost that governs standby state dispatch (§6.4): a
//! snapshot "should not take longer to dispatch to a standby task than the
//! job's checkpoint frequency".
//!
//! With incremental checkpointing a stored blob is either a full **base**
//! image or a **delta** referencing its parent checkpoint; `get` walks the
//! chain back to the base and reconstructs the full image via
//! [`crate::deltamap::merge_chain`]. Writes are charged transfer cost for the
//! blob actually shipped — deltas cost O(dirty), which is what keeps the
//! §6.4 dispatch-time-vs-checkpoint-interval bound honest under large state.

use crate::deltamap;
use bytes::Bytes;
use clonos_sim::{VirtualDuration, VirtualTime};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a completed (or in-progress) checkpoint.
pub type SnapshotId = u64;

/// Upper bound on delta-chain walks; real chains are bounded by the engine's
/// rebase interval, so hitting this means a corrupt parent pointer.
const MAX_CHAIN_LEN: usize = 4096;

/// Cost model for writing/reading snapshots over the network.
#[derive(Clone, Copy, Debug)]
pub struct TransferModel {
    /// Fixed per-transfer latency (connection setup, namenode round trip).
    pub latency: VirtualDuration,
    /// Sustained throughput in bytes per second.
    pub bytes_per_sec: u64,
}

impl TransferModel {
    pub fn transfer_time(&self, bytes: u64) -> VirtualDuration {
        let stream = bytes
            .saturating_mul(1_000_000)
            .checked_div(self.bytes_per_sec)
            .map(VirtualDuration::from_micros)
            .unwrap_or(VirtualDuration::ZERO);
        self.latency + stream
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        // ~10 ms setup + 200 MB/s sustained: a modest distributed FS.
        TransferModel { latency: VirtualDuration::from_millis(10), bytes_per_sec: 200_000_000 }
    }
}

/// One stored snapshot: a self-contained full image, or a delta whose full
/// image is `parent`'s image with the delta's entries applied on top.
#[derive(Clone, Debug)]
pub enum SnapshotBlob {
    Base(Bytes),
    Delta { parent: SnapshotId, bytes: Bytes },
}

impl SnapshotBlob {
    pub fn bytes(&self) -> &Bytes {
        match self {
            SnapshotBlob::Base(b) => b,
            SnapshotBlob::Delta { bytes, .. } => bytes,
        }
    }

    pub fn parent(&self) -> Option<SnapshotId> {
        match self {
            SnapshotBlob::Base(_) => None,
            SnapshotBlob::Delta { parent, .. } => Some(*parent),
        }
    }
}

/// The store itself.
///
/// Tiered-backend checkpoints additionally reference sealed tier segments
/// **by id**: the ack ships each segment payload exactly once (into the
/// `segments` arena, keyed `(task, segment id)` and refcounted), and every
/// checkpoint records its authoritative live-segment list in
/// `segment_refs`. Reconstruction folds the referenced segment payloads
/// (oldest first) under the resident image; GC drops an arena payload only
/// when the last checkpoint referencing it is truncated.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    snapshots: BTreeMap<(SnapshotId, u64), SnapshotBlob>,
    /// `(task, segment id) -> (payload, refcount)`.
    segments: BTreeMap<(u64, u64), (Bytes, u64)>,
    /// `(checkpoint, task) -> live segment ids in fold order`.
    segment_refs: BTreeMap<(SnapshotId, u64), Vec<u64>>,
    model: TransferModel,
    writes: u64,
    delta_writes: u64,
    segment_writes: u64,
    reads: u64,
    reconstructions: u64,
    reconstruct_us: u64,
}

impl SnapshotStore {
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    pub fn with_model(model: TransferModel) -> SnapshotStore {
        SnapshotStore { model, ..Default::default() }
    }

    /// Persist a task's full (base) image for a checkpoint; returns the
    /// modelled time the write completes if started at `now`.
    pub fn put(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
        state: Bytes,
    ) -> VirtualTime {
        let done = now + self.model.transfer_time(state.len() as u64);
        self.snapshots.insert((checkpoint, task), SnapshotBlob::Base(state));
        self.writes += 1;
        done
    }

    /// Persist a delta on top of `parent`'s image. Only the delta bytes are
    /// charged against the transfer model — the point of incremental
    /// checkpoints is that the barrier-path write cost is O(dirty).
    pub fn put_delta(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
        parent: SnapshotId,
        delta: Bytes,
    ) -> VirtualTime {
        let done = now + self.model.transfer_time(delta.len() as u64);
        self.snapshots.insert((checkpoint, task), SnapshotBlob::Delta { parent, bytes: delta });
        self.writes += 1;
        self.delta_writes += 1;
        done
    }

    /// Record a tiered checkpoint's segment references: `sealed` payloads
    /// enter the arena (each shipped exactly once), `live` is the
    /// checkpoint's authoritative id list in fold order. Returns the
    /// modelled transfer time for the shipped bytes — the caller adds it to
    /// the resident image's write time. Segments sealed then immediately
    /// compacted away (absent from every live list) are dropped.
    pub fn put_segments(
        &mut self,
        checkpoint: SnapshotId,
        task: u64,
        live: Vec<u64>,
        sealed: Vec<(u64, Bytes)>,
    ) -> VirtualDuration {
        let mut shipped = 8 * live.len() as u64;
        for (id, payload) in sealed {
            shipped += payload.len() as u64;
            self.segments.insert((task, id), (payload, 0));
            self.segment_writes += 1;
        }
        // A duplicate ack for the same (checkpoint, task) re-registers its
        // references; release the old list first so refcounts stay exact.
        if let Some(old) = self.segment_refs.insert((checkpoint, task), live) {
            self.release_refs(task, &old);
        }
        if let Some(ids) = self.segment_refs.get(&(checkpoint, task)).cloned() {
            for id in ids {
                if let Some(e) = self.segments.get_mut(&(task, id)) {
                    e.1 += 1;
                }
            }
        }
        // Anything still at refcount zero was never referenced (sealed and
        // compacted within one sync) — no checkpoint can ever need it.
        self.segments.retain(|_, (_, rc)| *rc > 0);
        self.model.transfer_time(shipped)
    }

    fn release_refs(&mut self, task: u64, ids: &[u64]) {
        for &id in ids {
            if let Some(e) = self.segments.get_mut(&(task, id)) {
                e.1 = e.1.saturating_sub(1);
                if e.1 == 0 {
                    self.segments.remove(&(task, id));
                }
            }
        }
    }

    /// Does this checkpoint reference tier segments? (Standby delta
    /// dispatch must fall back to full reconstruction when it does.)
    pub fn has_segments(&self, checkpoint: SnapshotId, task: u64) -> bool {
        self.segment_refs.contains_key(&(checkpoint, task))
    }

    /// The raw stored blob, if any (standby dispatch ships deltas directly).
    pub fn blob(&self, checkpoint: SnapshotId, task: u64) -> Option<&SnapshotBlob> {
        self.snapshots.get(&(checkpoint, task))
    }

    /// Blobs from `(checkpoint, task)` back to (and including) its base,
    /// newest first. `None` if any link of the chain is missing.
    fn chain(&self, checkpoint: SnapshotId, task: u64) -> Option<Vec<&SnapshotBlob>> {
        let mut out = Vec::new();
        let mut cp = checkpoint;
        loop {
            if out.len() >= MAX_CHAIN_LEN {
                return None;
            }
            let blob = self.snapshots.get(&(cp, task))?;
            out.push(blob);
            match blob.parent() {
                Some(parent) => cp = parent,
                None => return Some(out),
            }
        }
    }

    /// Fetch a task's *full* image for a checkpoint, reconstructing it from
    /// the base + delta chain when necessary; returns the bytes plus the
    /// modelled completion time of reading the whole chain starting at `now`.
    pub fn get(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
    ) -> Option<(Bytes, VirtualTime)> {
        let chain = self.chain(checkpoint, task)?;
        let total: u64 = chain.iter().map(|b| b.bytes().len() as u64).sum();
        let mut done = now + self.model.transfer_time(total);
        let mut reconstructed = chain.len() > 1;
        let image = match chain.as_slice() {
            [SnapshotBlob::Base(b)] => b.clone(),
            _ => {
                // chain is newest-first; merge wants base then deltas.
                let base = chain.last()?.bytes();
                let deltas: Vec<&[u8]> =
                    chain.iter().rev().skip(1).map(|b| b.bytes().as_ref()).collect();
                deltamap::merge_chain(base, &deltas).ok()?
            }
        };
        // Tiered checkpoints: fold the referenced segment payloads (already
        // in fold order, oldest first) under the resident image. Sections
        // are disjoint — segments hold the values section, the resident
        // image everything else — so the merge yields the canonical full
        // image, byte-identical to an untiered snapshot.
        let image = match self.segment_refs.get(&(checkpoint, task)).cloned() {
            None => image,
            Some(live) => {
                let mut layers: Vec<Bytes> = Vec::with_capacity(live.len() + 1);
                let mut seg_bytes = 0u64;
                for id in &live {
                    let (b, _) = self.segments.get(&(task, *id))?;
                    seg_bytes += b.len() as u64;
                    layers.push(b.clone());
                }
                layers.push(image);
                done += self.model.transfer_time(seg_bytes);
                reconstructed = true;
                let refs: Vec<&[u8]> = layers.iter().map(|b| b.as_ref()).collect();
                deltamap::fold_layers(&refs, true).ok()?
            }
        };
        if reconstructed {
            self.reconstructions += 1;
            self.reconstruct_us += done.saturating_sub(now).as_micros();
        }
        self.reads += 1;
        Some((image, done))
    }

    pub fn contains(&self, checkpoint: SnapshotId, task: u64) -> bool {
        self.snapshots.contains_key(&(checkpoint, task))
    }

    /// Checkpoint GC (Flink retains only the latest completed checkpoint):
    /// drop every blob not reachable — via parent pointers — from some blob
    /// with `cp >= keep_from`. Bases that still anchor a live delta chain
    /// survive even if older than `keep_from`; once a rebase supersedes a
    /// chain, the next GC collects the whole superseded chain.
    pub fn truncate_before(&mut self, keep_from: SnapshotId) {
        let mut keep: BTreeSet<(SnapshotId, u64)> = BTreeSet::new();
        for &(cp, task) in self.snapshots.keys() {
            if cp < keep_from {
                continue;
            }
            let mut cur = (cp, task);
            for _ in 0..MAX_CHAIN_LEN {
                if !keep.insert(cur) {
                    break;
                }
                match self.snapshots.get(&cur).and_then(|b| b.parent()) {
                    Some(parent) => cur = (parent, task),
                    None => break,
                }
            }
        }
        self.snapshots.retain(|k, _| keep.contains(k));
        // Release segment references held by truncated checkpoints; an
        // arena payload is deleted only when its last reference drops —
        // a segment shared across checkpoints must survive until every
        // checkpoint citing it is gone.
        let dead: Vec<((SnapshotId, u64), Vec<u64>)> = self
            .segment_refs
            .iter()
            .filter(|(k, _)| !keep.contains(k))
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        for ((_, task), ids) in dead {
            self.release_refs(task, &ids);
        }
        self.segment_refs.retain(|k, _| keep.contains(k));
    }

    pub fn total_bytes(&self) -> u64 {
        let blob: u64 = self.snapshots.values().map(|b| b.bytes().len() as u64).sum();
        blob + self.segment_arena_bytes()
    }

    /// Bytes held in the segment arena.
    pub fn segment_arena_bytes(&self) -> u64 {
        self.segments.values().map(|(b, _)| b.len() as u64).sum()
    }

    /// Distinct segment payloads currently in the arena.
    pub fn segment_arena_count(&self) -> u64 {
        self.segments.len() as u64
    }

    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Writes that shipped a delta rather than a full image.
    pub fn delta_writes(&self) -> u64 {
        self.delta_writes
    }

    /// Segment payloads shipped into the arena.
    pub fn segment_writes(&self) -> u64 {
        self.segment_writes
    }

    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads that had to merge a base + delta chain into a full image.
    pub fn reconstructions(&self) -> u64 {
        self.reconstructions
    }

    /// Modelled virtual microseconds spent on chain-reconstruction reads.
    pub fn reconstruct_us(&self) -> u64 {
        self.reconstruct_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ByteWriter;
    use crate::deltamap::{write_put, write_tombstone};

    type TestEntry<'a> = (u8, &'a [u8], Option<&'a [u8]>);

    fn image(entries: &[TestEntry<'_>]) -> Bytes {
        let mut w = ByteWriter::new();
        w.put_varint(entries.len() as u64);
        for &(section, key, value) in entries {
            match value {
                Some(v) => write_put(&mut w, section, key, v),
                None => write_tombstone(&mut w, section, key),
            }
        }
        w.freeze()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = SnapshotStore::new();
        let done = s.put(VirtualTime::ZERO, 1, 42, Bytes::from_static(b"state"));
        assert!(done > VirtualTime::ZERO);
        let (bytes, _) = s.get(VirtualTime::ZERO, 1, 42).unwrap();
        assert_eq!(&bytes[..], b"state");
        assert!(s.get(VirtualTime::ZERO, 1, 43).is_none());
        assert!(s.get(VirtualTime::ZERO, 2, 42).is_none());
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = TransferModel { latency: VirtualDuration::from_millis(10), bytes_per_sec: 1_000_000 };
        let small = m.transfer_time(1_000);
        let big = m.transfer_time(100_000_000); // 100 MB at 1 MB/s = 100 s
        assert!(big.as_secs_f64() > 99.0);
        assert!(small.as_millis() >= 10);
        assert!(small < big);
    }

    #[test]
    fn truncation_gc() {
        let mut s = SnapshotStore::new();
        for cp in 0..5 {
            s.put(VirtualTime::ZERO, cp, 1, Bytes::from_static(b"x"));
        }
        s.truncate_before(3);
        assert!(!s.contains(2, 1));
        assert!(s.contains(3, 1));
        assert!(s.contains(4, 1));
        assert_eq!(s.total_bytes(), 2);
    }

    #[test]
    fn overwrite_same_key_replaces() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 1, Bytes::from_static(b"old"));
        s.put(VirtualTime::ZERO, 1, 1, Bytes::from_static(b"newer"));
        let (b, _) = s.get(VirtualTime::ZERO, 1, 1).unwrap();
        assert_eq!(&b[..], b"newer");
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
    }

    #[test]
    fn delta_chain_reconstructs_full_image() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 7, image(&[(1, b"a", Some(b"1")), (1, b"b", Some(b"2"))]));
        s.put_delta(VirtualTime::ZERO, 2, 7, 1, image(&[(1, b"b", None), (1, b"c", Some(b"3"))]));
        s.put_delta(VirtualTime::ZERO, 3, 7, 2, image(&[(1, b"a", Some(b"9"))]));
        let (img, _) = s.get(VirtualTime::ZERO, 3, 7).unwrap();
        assert_eq!(img, image(&[(1, b"a", Some(b"9")), (1, b"c", Some(b"3"))]));
        // Intermediate chain members reconstruct too.
        let (img2, _) = s.get(VirtualTime::ZERO, 2, 7).unwrap();
        assert_eq!(img2, image(&[(1, b"a", Some(b"1")), (1, b"c", Some(b"3"))]));
        assert_eq!(s.reconstructions(), 2);
        assert!(s.reconstruct_us() > 0);
        assert_eq!(s.delta_writes(), 2);
    }

    #[test]
    fn broken_chain_is_a_miss_not_a_panic() {
        let mut s = SnapshotStore::new();
        s.put_delta(VirtualTime::ZERO, 2, 7, 1, image(&[(1, b"a", Some(b"1"))]));
        assert!(s.get(VirtualTime::ZERO, 2, 7).is_none());
        // Self-referential parent pointer terminates via the hop limit.
        s.put_delta(VirtualTime::ZERO, 5, 7, 5, image(&[]));
        assert!(s.get(VirtualTime::ZERO, 5, 7).is_none());
    }

    #[test]
    fn gc_keeps_bases_anchoring_live_chains() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 7, image(&[(1, b"a", Some(b"1"))]));
        s.put_delta(VirtualTime::ZERO, 2, 7, 1, image(&[(1, b"b", Some(b"2"))]));
        s.put_delta(VirtualTime::ZERO, 3, 7, 2, image(&[(1, b"c", Some(b"3"))]));
        s.truncate_before(3);
        // cp 3 needs 2 needs 1: all survive.
        assert!(s.contains(1, 7) && s.contains(2, 7) && s.contains(3, 7));
        assert!(s.get(VirtualTime::ZERO, 3, 7).is_some());
        // A rebase at cp 4 supersedes the chain; the next GC drops it whole.
        s.put(VirtualTime::ZERO, 4, 7, image(&[(1, b"z", Some(b"9"))]));
        s.truncate_before(4);
        assert!(!s.contains(1, 7) && !s.contains(2, 7) && !s.contains(3, 7));
        assert!(s.contains(4, 7));
    }

    #[test]
    fn segment_reconstruction_folds_values_under_resident_image() {
        let mut s = SnapshotStore::new();
        // Segments hold the values section (1); the resident image holds
        // meta (0) and a list (2). Disjoint sections merge canonically.
        let seg_a = image(&[(1, b"k1", Some(b"v1")), (1, b"k2", Some(b"old"))]);
        let seg_b = image(&[(1, b"k2", Some(b"new")), (1, b"k3", None)]);
        let resident = image(&[(0, b"", Some(b"meta")), (2, b"l", Some(b"list"))]);
        s.put(VirtualTime::ZERO, 1, 7, resident);
        let extra = s.put_segments(1, 7, vec![10, 11], vec![(10, seg_a), (11, seg_b)]);
        assert!(extra > VirtualDuration::ZERO);
        let (img, _) = s.get(VirtualTime::ZERO, 1, 7).unwrap();
        let expect = image(&[
            (0, b"", Some(b"meta")),
            (1, b"k1", Some(b"v1")),
            (1, b"k2", Some(b"new")),
            (2, b"l", Some(b"list")),
        ]);
        assert_eq!(img, expect);
        assert_eq!(s.reconstructions(), 1);
        assert_eq!(s.segment_writes(), 2);
    }

    #[test]
    fn missing_segment_payload_is_a_miss_not_a_panic() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 7, image(&[(0, b"", Some(b"m"))]));
        s.put_segments(1, 7, vec![99], vec![]); // referenced but never shipped
        assert!(s.get(VirtualTime::ZERO, 1, 7).is_none());
    }

    /// Satellite-2 regression: a segment shared by several checkpoint ids
    /// across a Base/Delta chain spanning a truncation boundary survives
    /// until the *last* reference drops.
    #[test]
    fn truncation_gc_drops_segments_only_at_last_reference() {
        let mut s = SnapshotStore::new();
        let seg_a = image(&[(1, b"a", Some(b"1"))]);
        let seg_b = image(&[(1, b"b", Some(b"2"))]);
        let seg_c = image(&[(1, b"c", Some(b"3"))]);
        // cp1: base, seals A. cp2: delta on 1, seals B, live [A, B].
        // cp3: delta on 2, seals nothing, live [A, B].
        s.put(VirtualTime::ZERO, 1, 7, image(&[(0, b"", Some(b"m1"))]));
        s.put_segments(1, 7, vec![1], vec![(1, seg_a)]);
        s.put_delta(VirtualTime::ZERO, 2, 7, 1, image(&[(0, b"", Some(b"m2"))]));
        s.put_segments(2, 7, vec![1, 2], vec![(2, seg_b)]);
        s.put_delta(VirtualTime::ZERO, 3, 7, 2, image(&[(0, b"", Some(b"m3"))]));
        s.put_segments(3, 7, vec![1, 2], vec![]);
        // Truncating to cp2 keeps the chain (cp1 anchors it) and thus every
        // segment reference.
        s.truncate_before(2);
        assert_eq!(s.segment_arena_count(), 2);
        assert!(s.get(VirtualTime::ZERO, 3, 7).is_some());
        // cp4 rebases: segment A was compacted away, C sealed; live [B, C].
        s.put(VirtualTime::ZERO, 4, 7, image(&[(0, b"", Some(b"m4"))]));
        s.put_segments(4, 7, vec![2, 3], vec![(3, seg_c)]);
        // GC to cp4: cps 1-3 drop. A's last reference drops with them; B is
        // still cited by cp4 and must survive.
        s.truncate_before(4);
        assert_eq!(s.segment_arena_count(), 2); // B and C
        let (img, _) = s.get(VirtualTime::ZERO, 4, 7).unwrap();
        let expect = image(&[
            (0, b"", Some(b"m4")),
            (1, b"b", Some(b"2")),
            (1, b"c", Some(b"3")),
        ]);
        assert_eq!(img, expect);
        // Dropping cp4 empties the arena entirely.
        s.truncate_before(5);
        assert_eq!(s.segment_arena_count(), 0);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn unreferenced_sealed_segment_is_dropped_immediately() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 7, image(&[(0, b"", Some(b"m"))]));
        // Segment 5 was sealed then compacted into 6 within the same sync:
        // it ships but no live list ever cites it.
        let extra = s.put_segments(
            1,
            7,
            vec![6],
            vec![(5, image(&[(1, b"x", Some(b"1"))])), (6, image(&[(1, b"x", Some(b"2"))]))],
        );
        assert!(extra > VirtualDuration::ZERO);
        assert_eq!(s.segment_arena_count(), 1);
        let (img, _) = s.get(VirtualTime::ZERO, 1, 7).unwrap();
        assert_eq!(img, image(&[(0, b"", Some(b"m")), (1, b"x", Some(b"2"))]));
    }

    #[test]
    fn delta_write_charges_delta_bytes_only() {
        let model =
            TransferModel { latency: VirtualDuration::ZERO, bytes_per_sec: 1_000_000 };
        let mut s = SnapshotStore::with_model(model);
        let big = vec![0u8; 1_000_000];
        let t_full = s.put(VirtualTime::ZERO, 1, 7, Bytes::from(big));
        let t_delta =
            s.put_delta(VirtualTime::ZERO, 2, 7, 1, Bytes::from_static(b"tiny delta"));
        assert!(t_full.as_secs_f64() > 0.9);
        assert!(t_delta.as_secs_f64() < 0.01);
    }
}
