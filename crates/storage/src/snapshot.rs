//! Checkpoint snapshot store — the HDFS substitute.
//!
//! Stores operator-state snapshots keyed by `(checkpoint id, task key)` and
//! models the transfer cost that governs standby state dispatch (§6.4): a
//! snapshot "should not take longer to dispatch to a standby task than the
//! job's checkpoint frequency".
//!
//! With incremental checkpointing a stored blob is either a full **base**
//! image or a **delta** referencing its parent checkpoint; `get` walks the
//! chain back to the base and reconstructs the full image via
//! [`crate::deltamap::merge_chain`]. Writes are charged transfer cost for the
//! blob actually shipped — deltas cost O(dirty), which is what keeps the
//! §6.4 dispatch-time-vs-checkpoint-interval bound honest under large state.

use crate::deltamap;
use bytes::Bytes;
use clonos_sim::{VirtualDuration, VirtualTime};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a completed (or in-progress) checkpoint.
pub type SnapshotId = u64;

/// Upper bound on delta-chain walks; real chains are bounded by the engine's
/// rebase interval, so hitting this means a corrupt parent pointer.
const MAX_CHAIN_LEN: usize = 4096;

/// Cost model for writing/reading snapshots over the network.
#[derive(Clone, Copy, Debug)]
pub struct TransferModel {
    /// Fixed per-transfer latency (connection setup, namenode round trip).
    pub latency: VirtualDuration,
    /// Sustained throughput in bytes per second.
    pub bytes_per_sec: u64,
}

impl TransferModel {
    pub fn transfer_time(&self, bytes: u64) -> VirtualDuration {
        let stream = bytes
            .saturating_mul(1_000_000)
            .checked_div(self.bytes_per_sec)
            .map(VirtualDuration::from_micros)
            .unwrap_or(VirtualDuration::ZERO);
        self.latency + stream
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        // ~10 ms setup + 200 MB/s sustained: a modest distributed FS.
        TransferModel { latency: VirtualDuration::from_millis(10), bytes_per_sec: 200_000_000 }
    }
}

/// One stored snapshot: a self-contained full image, or a delta whose full
/// image is `parent`'s image with the delta's entries applied on top.
#[derive(Clone, Debug)]
pub enum SnapshotBlob {
    Base(Bytes),
    Delta { parent: SnapshotId, bytes: Bytes },
}

impl SnapshotBlob {
    pub fn bytes(&self) -> &Bytes {
        match self {
            SnapshotBlob::Base(b) => b,
            SnapshotBlob::Delta { bytes, .. } => bytes,
        }
    }

    pub fn parent(&self) -> Option<SnapshotId> {
        match self {
            SnapshotBlob::Base(_) => None,
            SnapshotBlob::Delta { parent, .. } => Some(*parent),
        }
    }
}

/// The store itself.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    snapshots: BTreeMap<(SnapshotId, u64), SnapshotBlob>,
    model: TransferModel,
    writes: u64,
    delta_writes: u64,
    reads: u64,
    reconstructions: u64,
    reconstruct_us: u64,
}

impl SnapshotStore {
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    pub fn with_model(model: TransferModel) -> SnapshotStore {
        SnapshotStore { model, ..Default::default() }
    }

    /// Persist a task's full (base) image for a checkpoint; returns the
    /// modelled time the write completes if started at `now`.
    pub fn put(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
        state: Bytes,
    ) -> VirtualTime {
        let done = now + self.model.transfer_time(state.len() as u64);
        self.snapshots.insert((checkpoint, task), SnapshotBlob::Base(state));
        self.writes += 1;
        done
    }

    /// Persist a delta on top of `parent`'s image. Only the delta bytes are
    /// charged against the transfer model — the point of incremental
    /// checkpoints is that the barrier-path write cost is O(dirty).
    pub fn put_delta(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
        parent: SnapshotId,
        delta: Bytes,
    ) -> VirtualTime {
        let done = now + self.model.transfer_time(delta.len() as u64);
        self.snapshots.insert((checkpoint, task), SnapshotBlob::Delta { parent, bytes: delta });
        self.writes += 1;
        self.delta_writes += 1;
        done
    }

    /// The raw stored blob, if any (standby dispatch ships deltas directly).
    pub fn blob(&self, checkpoint: SnapshotId, task: u64) -> Option<&SnapshotBlob> {
        self.snapshots.get(&(checkpoint, task))
    }

    /// Blobs from `(checkpoint, task)` back to (and including) its base,
    /// newest first. `None` if any link of the chain is missing.
    fn chain(&self, checkpoint: SnapshotId, task: u64) -> Option<Vec<&SnapshotBlob>> {
        let mut out = Vec::new();
        let mut cp = checkpoint;
        loop {
            if out.len() >= MAX_CHAIN_LEN {
                return None;
            }
            let blob = self.snapshots.get(&(cp, task))?;
            out.push(blob);
            match blob.parent() {
                Some(parent) => cp = parent,
                None => return Some(out),
            }
        }
    }

    /// Fetch a task's *full* image for a checkpoint, reconstructing it from
    /// the base + delta chain when necessary; returns the bytes plus the
    /// modelled completion time of reading the whole chain starting at `now`.
    pub fn get(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
    ) -> Option<(Bytes, VirtualTime)> {
        let chain = self.chain(checkpoint, task)?;
        let total: u64 = chain.iter().map(|b| b.bytes().len() as u64).sum();
        let done = now + self.model.transfer_time(total);
        let image = match chain.as_slice() {
            [SnapshotBlob::Base(b)] => b.clone(),
            _ => {
                // chain is newest-first; merge wants base then deltas.
                let base = chain.last()?.bytes();
                let deltas: Vec<&[u8]> =
                    chain.iter().rev().skip(1).map(|b| b.bytes().as_ref()).collect();
                let merged = deltamap::merge_chain(base, &deltas).ok()?;
                self.reconstructions += 1;
                self.reconstruct_us += done.saturating_sub(now).as_micros();
                merged
            }
        };
        self.reads += 1;
        Some((image, done))
    }

    pub fn contains(&self, checkpoint: SnapshotId, task: u64) -> bool {
        self.snapshots.contains_key(&(checkpoint, task))
    }

    /// Checkpoint GC (Flink retains only the latest completed checkpoint):
    /// drop every blob not reachable — via parent pointers — from some blob
    /// with `cp >= keep_from`. Bases that still anchor a live delta chain
    /// survive even if older than `keep_from`; once a rebase supersedes a
    /// chain, the next GC collects the whole superseded chain.
    pub fn truncate_before(&mut self, keep_from: SnapshotId) {
        let mut keep: BTreeSet<(SnapshotId, u64)> = BTreeSet::new();
        for &(cp, task) in self.snapshots.keys() {
            if cp < keep_from {
                continue;
            }
            let mut cur = (cp, task);
            for _ in 0..MAX_CHAIN_LEN {
                if !keep.insert(cur) {
                    break;
                }
                match self.snapshots.get(&cur).and_then(|b| b.parent()) {
                    Some(parent) => cur = (parent, task),
                    None => break,
                }
            }
        }
        self.snapshots.retain(|k, _| keep.contains(k));
    }

    pub fn total_bytes(&self) -> u64 {
        self.snapshots.values().map(|b| b.bytes().len() as u64).sum()
    }

    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Writes that shipped a delta rather than a full image.
    pub fn delta_writes(&self) -> u64 {
        self.delta_writes
    }

    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads that had to merge a base + delta chain into a full image.
    pub fn reconstructions(&self) -> u64 {
        self.reconstructions
    }

    /// Modelled virtual microseconds spent on chain-reconstruction reads.
    pub fn reconstruct_us(&self) -> u64 {
        self.reconstruct_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ByteWriter;
    use crate::deltamap::{write_put, write_tombstone};

    type TestEntry<'a> = (u8, &'a [u8], Option<&'a [u8]>);

    fn image(entries: &[TestEntry<'_>]) -> Bytes {
        let mut w = ByteWriter::new();
        w.put_varint(entries.len() as u64);
        for &(section, key, value) in entries {
            match value {
                Some(v) => write_put(&mut w, section, key, v),
                None => write_tombstone(&mut w, section, key),
            }
        }
        w.freeze()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = SnapshotStore::new();
        let done = s.put(VirtualTime::ZERO, 1, 42, Bytes::from_static(b"state"));
        assert!(done > VirtualTime::ZERO);
        let (bytes, _) = s.get(VirtualTime::ZERO, 1, 42).unwrap();
        assert_eq!(&bytes[..], b"state");
        assert!(s.get(VirtualTime::ZERO, 1, 43).is_none());
        assert!(s.get(VirtualTime::ZERO, 2, 42).is_none());
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = TransferModel { latency: VirtualDuration::from_millis(10), bytes_per_sec: 1_000_000 };
        let small = m.transfer_time(1_000);
        let big = m.transfer_time(100_000_000); // 100 MB at 1 MB/s = 100 s
        assert!(big.as_secs_f64() > 99.0);
        assert!(small.as_millis() >= 10);
        assert!(small < big);
    }

    #[test]
    fn truncation_gc() {
        let mut s = SnapshotStore::new();
        for cp in 0..5 {
            s.put(VirtualTime::ZERO, cp, 1, Bytes::from_static(b"x"));
        }
        s.truncate_before(3);
        assert!(!s.contains(2, 1));
        assert!(s.contains(3, 1));
        assert!(s.contains(4, 1));
        assert_eq!(s.total_bytes(), 2);
    }

    #[test]
    fn overwrite_same_key_replaces() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 1, Bytes::from_static(b"old"));
        s.put(VirtualTime::ZERO, 1, 1, Bytes::from_static(b"newer"));
        let (b, _) = s.get(VirtualTime::ZERO, 1, 1).unwrap();
        assert_eq!(&b[..], b"newer");
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
    }

    #[test]
    fn delta_chain_reconstructs_full_image() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 7, image(&[(1, b"a", Some(b"1")), (1, b"b", Some(b"2"))]));
        s.put_delta(VirtualTime::ZERO, 2, 7, 1, image(&[(1, b"b", None), (1, b"c", Some(b"3"))]));
        s.put_delta(VirtualTime::ZERO, 3, 7, 2, image(&[(1, b"a", Some(b"9"))]));
        let (img, _) = s.get(VirtualTime::ZERO, 3, 7).unwrap();
        assert_eq!(img, image(&[(1, b"a", Some(b"9")), (1, b"c", Some(b"3"))]));
        // Intermediate chain members reconstruct too.
        let (img2, _) = s.get(VirtualTime::ZERO, 2, 7).unwrap();
        assert_eq!(img2, image(&[(1, b"a", Some(b"1")), (1, b"c", Some(b"3"))]));
        assert_eq!(s.reconstructions(), 2);
        assert!(s.reconstruct_us() > 0);
        assert_eq!(s.delta_writes(), 2);
    }

    #[test]
    fn broken_chain_is_a_miss_not_a_panic() {
        let mut s = SnapshotStore::new();
        s.put_delta(VirtualTime::ZERO, 2, 7, 1, image(&[(1, b"a", Some(b"1"))]));
        assert!(s.get(VirtualTime::ZERO, 2, 7).is_none());
        // Self-referential parent pointer terminates via the hop limit.
        s.put_delta(VirtualTime::ZERO, 5, 7, 5, image(&[]));
        assert!(s.get(VirtualTime::ZERO, 5, 7).is_none());
    }

    #[test]
    fn gc_keeps_bases_anchoring_live_chains() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 7, image(&[(1, b"a", Some(b"1"))]));
        s.put_delta(VirtualTime::ZERO, 2, 7, 1, image(&[(1, b"b", Some(b"2"))]));
        s.put_delta(VirtualTime::ZERO, 3, 7, 2, image(&[(1, b"c", Some(b"3"))]));
        s.truncate_before(3);
        // cp 3 needs 2 needs 1: all survive.
        assert!(s.contains(1, 7) && s.contains(2, 7) && s.contains(3, 7));
        assert!(s.get(VirtualTime::ZERO, 3, 7).is_some());
        // A rebase at cp 4 supersedes the chain; the next GC drops it whole.
        s.put(VirtualTime::ZERO, 4, 7, image(&[(1, b"z", Some(b"9"))]));
        s.truncate_before(4);
        assert!(!s.contains(1, 7) && !s.contains(2, 7) && !s.contains(3, 7));
        assert!(s.contains(4, 7));
    }

    #[test]
    fn delta_write_charges_delta_bytes_only() {
        let model =
            TransferModel { latency: VirtualDuration::ZERO, bytes_per_sec: 1_000_000 };
        let mut s = SnapshotStore::with_model(model);
        let big = vec![0u8; 1_000_000];
        let t_full = s.put(VirtualTime::ZERO, 1, 7, Bytes::from(big));
        let t_delta =
            s.put_delta(VirtualTime::ZERO, 2, 7, 1, Bytes::from_static(b"tiny delta"));
        assert!(t_full.as_secs_f64() > 0.9);
        assert!(t_delta.as_secs_f64() < 0.01);
    }
}
