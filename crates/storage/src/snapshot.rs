//! Checkpoint snapshot store — the HDFS substitute.
//!
//! Stores operator-state snapshots keyed by `(checkpoint id, task key)` and
//! models the transfer cost that governs standby state dispatch (§6.4): a
//! snapshot "should not take longer to dispatch to a standby task than the
//! job's checkpoint frequency".

use bytes::Bytes;
use clonos_sim::{VirtualDuration, VirtualTime};
use std::collections::BTreeMap;

/// Identifies a completed (or in-progress) checkpoint.
pub type SnapshotId = u64;

/// Cost model for writing/reading snapshots over the network.
#[derive(Clone, Copy, Debug)]
pub struct TransferModel {
    /// Fixed per-transfer latency (connection setup, namenode round trip).
    pub latency: VirtualDuration,
    /// Sustained throughput in bytes per second.
    pub bytes_per_sec: u64,
}

impl TransferModel {
    pub fn transfer_time(&self, bytes: u64) -> VirtualDuration {
        let stream = bytes
            .saturating_mul(1_000_000)
            .checked_div(self.bytes_per_sec)
            .map(VirtualDuration::from_micros)
            .unwrap_or(VirtualDuration::ZERO);
        self.latency + stream
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        // ~10 ms setup + 200 MB/s sustained: a modest distributed FS.
        TransferModel { latency: VirtualDuration::from_millis(10), bytes_per_sec: 200_000_000 }
    }
}

/// The store itself.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    snapshots: BTreeMap<(SnapshotId, u64), Bytes>,
    model: TransferModel,
    writes: u64,
    reads: u64,
}

impl SnapshotStore {
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    pub fn with_model(model: TransferModel) -> SnapshotStore {
        SnapshotStore { model, ..Default::default() }
    }

    /// Persist a task's state for a checkpoint; returns the modelled time the
    /// write completes if started at `now`.
    pub fn put(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
        state: Bytes,
    ) -> VirtualTime {
        let done = now + self.model.transfer_time(state.len() as u64);
        self.snapshots.insert((checkpoint, task), state);
        self.writes += 1;
        done
    }

    /// Fetch a task's snapshot; returns the bytes plus modelled completion
    /// time of the read if started at `now`.
    pub fn get(
        &mut self,
        now: VirtualTime,
        checkpoint: SnapshotId,
        task: u64,
    ) -> Option<(Bytes, VirtualTime)> {
        let bytes = self.snapshots.get(&(checkpoint, task))?.clone();
        let done = now + self.model.transfer_time(bytes.len() as u64);
        self.reads += 1;
        Some((bytes, done))
    }

    pub fn contains(&self, checkpoint: SnapshotId, task: u64) -> bool {
        self.snapshots.contains_key(&(checkpoint, task))
    }

    /// Drop all snapshots belonging to checkpoints older than `keep_from`
    /// (checkpoint GC — Flink retains only the latest completed checkpoint).
    pub fn truncate_before(&mut self, keep_from: SnapshotId) {
        self.snapshots.retain(|&(cp, _), _| cp >= keep_from);
    }

    pub fn total_bytes(&self) -> u64 {
        self.snapshots.values().map(|b| b.len() as u64).sum()
    }

    pub fn writes(&self) -> u64 {
        self.writes
    }

    pub fn reads(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut s = SnapshotStore::new();
        let done = s.put(VirtualTime::ZERO, 1, 42, Bytes::from_static(b"state"));
        assert!(done > VirtualTime::ZERO);
        let (bytes, _) = s.get(VirtualTime::ZERO, 1, 42).unwrap();
        assert_eq!(&bytes[..], b"state");
        assert!(s.get(VirtualTime::ZERO, 1, 43).is_none());
        assert!(s.get(VirtualTime::ZERO, 2, 42).is_none());
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = TransferModel { latency: VirtualDuration::from_millis(10), bytes_per_sec: 1_000_000 };
        let small = m.transfer_time(1_000);
        let big = m.transfer_time(100_000_000); // 100 MB at 1 MB/s = 100 s
        assert!(big.as_secs_f64() > 99.0);
        assert!(small.as_millis() >= 10);
        assert!(small < big);
    }

    #[test]
    fn truncation_gc() {
        let mut s = SnapshotStore::new();
        for cp in 0..5 {
            s.put(VirtualTime::ZERO, cp, 1, Bytes::from_static(b"x"));
        }
        s.truncate_before(3);
        assert!(!s.contains(2, 1));
        assert!(s.contains(3, 1));
        assert!(s.contains(4, 1));
        assert_eq!(s.total_bytes(), 2);
    }

    #[test]
    fn overwrite_same_key_replaces() {
        let mut s = SnapshotStore::new();
        s.put(VirtualTime::ZERO, 1, 1, Bytes::from_static(b"old"));
        s.put(VirtualTime::ZERO, 1, 1, Bytes::from_static(b"newer"));
        let (b, _) = s.get(VirtualTime::ZERO, 1, 1).unwrap();
        assert_eq!(&b[..], b"newer");
        assert_eq!(s.writes(), 2);
        assert_eq!(s.reads(), 1);
    }
}
