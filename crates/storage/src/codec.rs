//! Compact binary codec used throughout the system: records on the wire,
//! determinants in causal logs, operator state in snapshots.
//!
//! Integers use LEB128 varint encoding (most values are small — channel
//! indices, buffer sizes, epoch numbers), which keeps determinant logs and
//! piggybacked deltas compact; the paper stresses that causal-logging
//! overhead is dominated by the volume of shipped determinants.

use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// Errors produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof { needed: usize, remaining: usize },
    /// A varint ran past its maximum width.
    VarintOverflow,
    /// A tag byte did not correspond to any known variant.
    InvalidTag { context: &'static str, tag: u8 },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected EOF: needed {needed} bytes, {remaining} remaining")
            }
            CodecError::VarintOverflow => write!(f, "varint overflow"),
            CodecError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag:#x} while decoding {context}")
            }
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder over a `BytesMut`.
#[derive(Clone, Default, Debug)]
pub struct ByteWriter {
    buf: BytesMut,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter { buf: BytesMut::new() }
    }

    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter { buf: BytesMut::with_capacity(cap) }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// LEB128 varint.
    #[inline]
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// ZigZag-encoded signed varint.
    #[inline]
    pub fn put_varint_i64(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Raw bytes without a length prefix (caller manages framing).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Reserve a fixed-width `u32` length prefix and return its position.
    /// The caller streams the value directly into the writer and then calls
    /// [`ByteWriter::end_u32_len`] to patch the actual length in — no
    /// intermediate `Vec` per value, which is what keeps snapshot encoding
    /// allocation-free in the steady state.
    #[inline]
    pub fn begin_u32_len(&mut self) -> usize {
        let pos = self.buf.len();
        self.buf.put_u32_le(0);
        pos
    }

    /// Patch the placeholder written by [`ByteWriter::begin_u32_len`] with
    /// the number of bytes appended since.
    #[inline]
    pub fn end_u32_len(&mut self, pos: usize) {
        let len = (self.buf.len() - pos - 4) as u32;
        // clonos-lint: allow(panic-path, reason = "pos is a begin_u32_len cookie; the 4-byte prefix exists by construction")
        self.buf[pos..pos + 4].copy_from_slice(&len.to_le_bytes());
    }

    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }

    /// Freeze the current contents into a [`Bytes`] and reset the writer for
    /// reuse, retaining its allocation. This is what lets a pooled per-channel
    /// writer serve many buffers without reallocating on every flush.
    pub fn take_frozen(&mut self) -> Bytes {
        let frozen = Bytes::copy_from_slice(&self.buf);
        self.buf.clear();
        frozen
    }

    /// Drop the contents but keep the allocation (pooled-writer reuse).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, remaining: self.remaining() });
        }
        // clonos-lint: allow(panic-path, reason = "bounds checked above; short reads surface CodecError::UnexpectedEof")
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::VarintOverflow);
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::VarintOverflow);
            }
        }
    }

    pub fn get_varint_i64(&mut self) -> Result<i64, CodecError> {
        let z = self.get_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub fn get_u32_le(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(s);
        Ok(u32::from_le_bytes(a))
    }

    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(f64::from_bits(u64::from_le_bytes(a)))
    }

    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_u8()? != 0)
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_varint()? as usize;
        self.take(n)
    }

    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::InvalidUtf8)
    }

    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            let bytes = w.freeze();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn signed_varint_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut w = ByteWriter::new();
            w.put_varint_i64(v);
            let bytes = w.freeze();
            assert_eq!(ByteReader::new(&bytes).get_varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn small_signed_values_encode_small() {
        let mut w = ByteWriter::new();
        w.put_varint_i64(-2);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn mixed_sequence_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_varint(300);
        w.put_varint_i64(-12345);
        w.put_f64(3.5);
        w.put_bool(true);
        w.put_str("clonos");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.freeze();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_varint_i64().unwrap(), -12345);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "clonos");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn u32_len_patching() {
        let mut w = ByteWriter::new();
        w.put_u8(0xaa);
        let pos = w.begin_u32_len();
        w.put_raw(b"hello");
        w.end_u32_len(pos);
        let pos2 = w.begin_u32_len();
        w.end_u32_len(pos2); // empty value
        let bytes = w.freeze();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xaa);
        let n = r.get_u32_le().unwrap() as usize;
        assert_eq!(r.get_raw(n).unwrap(), b"hello");
        assert_eq!(r.get_u32_le().unwrap(), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn eof_is_reported_not_panicking() {
        let mut r = ByteReader::new(&[0x80]); // truncated varint
        assert!(matches!(r.get_varint(), Err(CodecError::UnexpectedEof { .. })));
        let mut r = ByteReader::new(&[]);
        assert!(matches!(r.get_f64(), Err(CodecError::UnexpectedEof { needed: 8, .. })));
    }

    #[test]
    fn varint_overflow_detected() {
        // 10 continuation bytes of 0xff overflow a u64.
        let bytes = [0xffu8; 10];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_varint(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.freeze();
        assert_eq!(ByteReader::new(&bytes).get_str(), Err(CodecError::InvalidUtf8));
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut w = ByteWriter::new();
            w.put_varint(v);
            let b = w.freeze();
            prop_assert_eq!(ByteReader::new(&b).get_varint().unwrap(), v);
        }

        #[test]
        fn prop_signed_roundtrip(v in any::<i64>()) {
            let mut w = ByteWriter::new();
            w.put_varint_i64(v);
            let b = w.freeze();
            prop_assert_eq!(ByteReader::new(&b).get_varint_i64().unwrap(), v);
        }

        #[test]
        fn prop_bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut w = ByteWriter::new();
            w.put_bytes(&v);
            let b = w.freeze();
            prop_assert_eq!(ByteReader::new(&b).get_bytes().unwrap(), &v[..]);
        }

        #[test]
        fn prop_f64_roundtrip(v in any::<f64>()) {
            let mut w = ByteWriter::new();
            w.put_f64(v);
            let b = w.freeze();
            let back = ByteReader::new(&b).get_f64().unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }

        #[test]
        fn prop_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut r = ByteReader::new(&bytes);
            // Whatever the input, decoding returns Ok or Err — never panics.
            let _ = r.get_varint();
            let _ = r.get_str();
            let _ = r.get_f64();
        }
    }
}
