//! # clonos-storage — storage substrates for the Clonos reproduction
//!
//! The paper's deployment uses Kafka as the durable source/sink, HDFS as the
//! checkpoint store, local disks for spilling, and arbitrary external
//! services reachable from UDFs. This crate provides faithful in-process
//! substitutes:
//!
//! - [`codec`] — the compact binary encoding shared by records, determinants
//!   and snapshots;
//! - [`log`] — [`log::DurableLog`], a partitioned, offset-addressable,
//!   replayable record log with per-partition FIFO semantics, plus the
//!   determinant-metadata side channel needed for Clonos' low-latency
//!   exactly-once output (§5.5);
//! - [`deltamap`] — the sectioned key/value image format behind incremental
//!   checkpoints: full images, deltas with tombstones, chain merging;
//! - [`snapshot`] — [`snapshot::SnapshotStore`], checkpoints keyed by
//!   `(checkpoint id, task)` stored as base + delta chains with modelled
//!   transfer cost;
//! - [`spill`] — [`spill::SpillDevice`], an I/O-cost-modelled append device
//!   backing the spilling in-flight log (§6.1);
//! - [`lsm`] — [`lsm::TieredStore`], the tiered log-structured state
//!   backend: bounded memtable, leveled deltamap-format segments on the
//!   spill device, size-tiered compaction, and a crash-consistent segment
//!   manifest (DESIGN.md §10);
//! - [`external`] — [`external::ExternalKv`], a time-varying key-value
//!   "external world" that makes UDF calls genuinely nondeterministic (§4.1).

pub mod codec;
pub mod deltamap;
pub mod external;
pub mod log;
pub mod lsm;
pub mod snapshot;
pub mod spill;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use external::ExternalKv;
pub use log::{DurableLog, LogPartition, Offset};
pub use lsm::{TierStats, TieredConfig, TieredStore};
pub use snapshot::{SnapshotBlob, SnapshotId, SnapshotStore};
pub use spill::{SpillDevice, SpillHandle};
