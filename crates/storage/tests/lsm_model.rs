//! Model-based property tests for the tiered log-structured store.
//!
//! Two properties pin the backend down:
//!
//! 1. **Read-your-writes equivalence** — after any schedule of puts,
//!    deletes, flushes and (implicitly triggered) compactions, every point
//!    read and the canonical fold agree with a flat `BTreeMap` model.
//! 2. **Crash consistency** — at every manifest-edit boundary, reopening
//!    from the manifest log plus the device contents reconstructs the
//!    exact tier tree the live store holds; truncating the log anywhere
//!    never panics and lands on some complete-edit prefix.

use bytes::Bytes;
use clonos_storage::lsm::{TieredConfig, TieredStore};
use clonos_storage::SpillDevice;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Put(u8, u64, Vec<u8>),
    Delete(u8, u64),
    Flush,
    /// A batch of wide rows — forces memtable flushes and, under the tiny
    /// test config, compaction cascades.
    Churn(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..=2, 0u64..64, proptest::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(s, k, v)| Op::Put(s, k, v)),
        (1u8..=2, 0u64..64, proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(s, k, v)| Op::Put(s, k, v)),
        (1u8..=2, 0u64..64).prop_map(|(s, k)| Op::Delete(s, k)),
        Just(Op::Flush),
        (0u64..8).prop_map(Op::Churn),
    ]
}

fn cfg() -> TieredConfig {
    // Tiny budgets so short schedules exercise flush, multi-level
    // compaction, and the in-place bottom-level path.
    TieredConfig {
        memtable_bytes: 192,
        level_fanout: 2,
        index_every: 3,
        filter_bits_per_key: 8,
        bulk_level: 3,
        bulk_segment_bytes: 256,
    }
}

fn fkey(section: u8, key: u64) -> Vec<u8> {
    let mut v = vec![section];
    v.extend_from_slice(&key.to_be_bytes());
    v
}

fn apply(s: &mut TieredStore, model: &mut BTreeMap<Vec<u8>, Bytes>, o: &Op) {
    match o {
        Op::Put(sec, k, v) => {
            let val = Bytes::from(v.clone());
            s.put(*sec, &k.to_be_bytes(), val.clone());
            model.insert(fkey(*sec, *k), val);
        }
        Op::Delete(sec, k) => {
            s.delete(*sec, &k.to_be_bytes());
            model.remove(&fkey(*sec, *k));
        }
        Op::Flush => {
            s.flush();
        }
        Op::Churn(base) => {
            for i in 0..16u64 {
                let k = 1000 + base * 16 + i;
                let val = Bytes::from(vec![(base + i) as u8; 24]);
                s.put(1, &k.to_be_bytes(), val.clone());
                model.insert(fkey(1, k), val);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reads_and_fold_match_flat_model(
        ops in proptest::collection::vec(op(), 1..80),
        bulk in any::<bool>(),
    ) {
        let mut s = TieredStore::new(cfg(), SpillDevice::new(), 0);
        let mut model: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
        if bulk {
            let seed: Vec<(Vec<u8>, Bytes)> =
                (0..32u64).map(|i| (fkey(1, i), Bytes::from(vec![i as u8; 12]))).collect();
            for (k, v) in &seed {
                model.insert(k.clone(), v.clone());
            }
            s.bulk_load(seed);
        }
        for o in &ops {
            apply(&mut s, &mut model, o);
        }
        for sec in 1..=2u8 {
            for k in 0..64u64 {
                let expect = model.get(&fkey(sec, k)).cloned();
                prop_assert_eq!(s.get(sec, &k.to_be_bytes()), expect, "sec={} key={}", sec, k);
            }
        }
        prop_assert_eq!(s.fold_entries(), model);
    }

    #[test]
    fn manifest_replay_reconstructs_tree_at_every_edit_boundary(
        ops in proptest::collection::vec(op(), 1..60),
        bulk in any::<bool>(),
    ) {
        let mut s = TieredStore::new(cfg(), SpillDevice::new(), 0);
        let mut model: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
        if bulk {
            s.bulk_load((0..24u64).map(|i| (fkey(1, i), Bytes::from(vec![i as u8; 10]))));
        }
        let mut last_records = s.manifest_records();
        let mut boundaries = 0u32;
        for o in &ops {
            apply(&mut s, &mut model, o);
            if s.manifest_records() == last_records {
                continue;
            }
            last_records = s.manifest_records();
            boundaries += 1;
            // Simulated crash: all that survives is the manifest log and
            // the device. The reopened tier tree must be identical.
            let crashed = TieredStore::reopen(cfg(), s.manifest_bytes(), s.device().clone());
            prop_assert_eq!(crashed.levels(), s.levels());
            prop_assert_eq!(crashed.manifest_records(), last_records);
            prop_assert_eq!(crashed.segment_bytes(), s.segment_bytes());
        }
        if s.manifest_records() > 0 {
            prop_assert!(boundaries > 0 || bulk);
        }
        // Torn-tail cuts: reopening from any truncation of the log must
        // not panic and must land on a complete-edit prefix.
        let bytes = s.manifest_bytes().to_vec();
        for cut in (0..=bytes.len()).step_by(7) {
            let r = TieredStore::reopen(cfg(), &bytes[..cut], s.device().clone());
            prop_assert!(r.manifest_records() <= s.manifest_records());
        }
    }
}
