//! The event queue at the heart of the simulation.
//!
//! [`Simulation`] is generic over the message type `M` and over the actor
//! address type (a plain `u64` id). It owns only the clock and the pending
//! event heap; the embedding system owns the actors and dispatches events
//! popped from the queue. Ties in delivery time are broken by insertion
//! sequence number, which makes the whole run deterministic.

use crate::time::{VirtualDuration, VirtualTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Address of a simulated entity (task, coordinator, source, ...).
pub type ActorId = u64;

/// A scheduled delivery.
struct Scheduled<M> {
    at: VirtualTime,
    seq: u64,
    dest: ActorId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An event popped from the queue, ready for dispatch.
#[derive(Debug)]
pub struct Delivery<M> {
    pub at: VirtualTime,
    pub dest: ActorId,
    pub msg: M,
}

/// Deterministic discrete-event queue with a virtual clock.
pub struct Simulation<M> {
    now: VirtualTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    delivered: u64,
}

impl<M> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Simulation<M> {
    pub fn new() -> Simulation<M> {
        Simulation { now: VirtualTime::ZERO, seq: 0, queue: BinaryHeap::new(), delivered: 0 }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of events delivered so far (for loop/progress guards).
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `msg` for delivery to `dest` at absolute time `at`.
    /// Scheduling in the past clamps to `now` (delivery still honours FIFO
    /// among same-time events via the sequence number).
    pub fn schedule_at(&mut self, at: VirtualTime, dest: ActorId, msg: M) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, dest, msg });
    }

    /// Schedule `msg` for delivery `delay` from now.
    pub fn schedule_in(&mut self, delay: VirtualDuration, dest: ActorId, msg: M) {
        self.schedule_at(self.now + delay, dest, msg);
    }

    /// Pop the next event, advancing the clock to its delivery time.
    pub fn pop(&mut self) -> Option<Delivery<M>> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.delivered += 1;
        Some(Delivery { at: ev.at, dest: ev.dest, msg: ev.msg })
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.queue.peek().map(|e| e.at)
    }

    /// Drop every pending event addressed to `dest` (used when a simulated
    /// process is killed: in-flight deliveries to a dead process are lost).
    pub fn drop_events_for(&mut self, dest: ActorId) -> usize {
        let before = self.queue.len();
        self.queue.retain(|e| e.dest != dest);
        before - self.queue.len()
    }
}

/// The scheduling interface actors program against: a virtual clock plus
/// timed message delivery. The deterministic event queue ([`Simulation`]) is
/// one implementation; the engine's multi-threaded actor runtime provides
/// another whose clock is per-actor (Lamport-style: receivers advance to
/// `max(local, msg.at)`). Code written against `dyn Scheduler` runs
/// unchanged on either.
pub trait Scheduler<M> {
    /// Current virtual time as seen by the calling actor.
    fn now(&self) -> VirtualTime;

    /// Schedule `msg` for delivery to `dest` at absolute virtual time `at`.
    /// Scheduling in the past clamps to `now`.
    fn schedule_at(&mut self, at: VirtualTime, dest: ActorId, msg: M);

    /// Schedule `msg` for delivery `delay` from now.
    fn schedule_in(&mut self, delay: VirtualDuration, dest: ActorId, msg: M) {
        self.schedule_at(self.now() + delay, dest, msg);
    }
}

impl<M> Scheduler<M> for Simulation<M> {
    fn now(&self) -> VirtualTime {
        Simulation::now(self)
    }

    fn schedule_at(&mut self, at: VirtualTime, dest: ActorId, msg: M) {
        Simulation::schedule_at(self, at, dest, msg);
    }

    fn schedule_in(&mut self, delay: VirtualDuration, dest: ActorId, msg: M) {
        Simulation::schedule_in(self, delay, dest, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.schedule_at(VirtualTime(30), 1, "c");
        sim.schedule_at(VirtualTime(10), 1, "a");
        sim.schedule_at(VirtualTime(20), 2, "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|d| d.msg).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(sim.now(), VirtualTime(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Simulation<u32> = Simulation::new();
        for i in 0..10 {
            sim.schedule_at(VirtualTime(5), 0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|d| d.msg).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_monotonic_and_past_clamped() {
        let mut sim: Simulation<u8> = Simulation::new();
        sim.schedule_at(VirtualTime(100), 0, 1);
        sim.pop();
        assert_eq!(sim.now(), VirtualTime(100));
        // Scheduling "at 50" now clamps to 100.
        sim.schedule_at(VirtualTime(50), 0, 2);
        let d = sim.pop().unwrap();
        assert_eq!(d.at, VirtualTime(100));
        assert_eq!(sim.now(), VirtualTime(100));
    }

    #[test]
    fn drop_events_for_dead_actor() {
        let mut sim: Simulation<u8> = Simulation::new();
        for i in 0..5 {
            sim.schedule_at(VirtualTime(i), 7, 0);
            sim.schedule_at(VirtualTime(i), 8, 1);
        }
        let dropped = sim.drop_events_for(7);
        assert_eq!(dropped, 5);
        assert_eq!(sim.pending(), 5);
        while let Some(d) = sim.pop() {
            assert_eq!(d.dest, 8);
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim: Simulation<u8> = Simulation::new();
        sim.schedule_at(VirtualTime(1_000), 0, 0);
        sim.pop();
        sim.schedule_in(VirtualDuration::from_micros(500), 0, 1);
        assert_eq!(sim.pop().unwrap().at, VirtualTime(1_500));
    }

    #[test]
    fn delivered_counter_counts() {
        let mut sim: Simulation<u8> = Simulation::new();
        sim.schedule_in(VirtualDuration::ZERO, 0, 0);
        sim.schedule_in(VirtualDuration::ZERO, 0, 0);
        assert_eq!(sim.delivered(), 0);
        sim.pop();
        sim.pop();
        assert!(sim.pop().is_none());
        assert_eq!(sim.delivered(), 2);
    }
}
