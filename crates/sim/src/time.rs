//! Virtual time. All simulated timing — processing time, ingestion time,
//! heartbeat timeouts, checkpoint intervals — reads this clock, never the
//! host's wall clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(pub u64);

impl VirtualTime {
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// Far future; used as an "infinite" deadline sentinel.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float, for plotting/reporting.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    pub fn saturating_sub(self, other: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }
}

impl VirtualDuration {
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    #[inline]
    pub const fn from_micros(us: u64) -> VirtualDuration {
        VirtualDuration(us)
    }

    #[inline]
    pub const fn from_millis(ms: u64) -> VirtualDuration {
        VirtualDuration(ms * 1_000)
    }

    #[inline]
    pub const fn from_secs(s: u64) -> VirtualDuration {
        VirtualDuration(s * 1_000_000)
    }

    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    pub fn mul_f64(self, f: f64) -> VirtualDuration {
        VirtualDuration((self.0 as f64 * f) as u64)
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    /// Panics in debug builds if `rhs > self`; use `saturating_sub` when the
    /// ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        debug_assert!(self.0 >= rhs.0, "virtual time underflow");
        VirtualDuration(self.0 - rhs.0)
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = VirtualTime::ZERO + VirtualDuration::from_secs(2);
        assert_eq!(t.as_millis(), 2_000);
        let t2 = t + VirtualDuration::from_millis(500);
        assert_eq!((t2 - t).as_millis(), 500);
        assert_eq!(t2.as_secs_f64(), 2.5);
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let a = VirtualTime(5);
        let b = VirtualTime(10);
        assert_eq!(a.saturating_sub(b), VirtualDuration::ZERO);
        assert_eq!(b.saturating_sub(a), VirtualDuration(5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtualDuration::from_micros(42).to_string(), "42us");
        assert_eq!(VirtualDuration::from_millis(42).to_string(), "42ms");
        assert_eq!(VirtualDuration::from_secs(4).to_string(), "4.000s");
        assert_eq!(VirtualTime(1_500_000).to_string(), "1.500s");
    }

    #[test]
    fn max_is_far_future() {
        let t = VirtualTime(123) + VirtualDuration::from_secs(1_000_000);
        assert!(t < VirtualTime::MAX);
        assert_eq!(VirtualTime::MAX + VirtualDuration::from_secs(1), VirtualTime::MAX);
    }
}
