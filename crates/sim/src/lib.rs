//! # clonos-sim — deterministic discrete-event simulation substrate
//!
//! The Clonos paper evaluates on a 150-node Kubernetes cluster. This crate is
//! the substitute substrate: a deterministic discrete-event simulator with a
//! virtual clock, seeded randomness, actor service-time accounting, network
//! links with latency and jitter, and failure injection.
//!
//! Determinism is the point: a run is a pure function of its seed, so the
//! test suite can verify exactly-once semantics *exactly* — something the
//! paper's physical testbed cannot do. Nondeterminism *within the modelled
//! system* (arrival order across channels, flush-timer interleavings,
//! processing-time reads) is induced by seeded jitter, so different seeds
//! exercise the nondeterminism classes of §4.1 of the paper.
//!
//! The simulator is intentionally decoupled from the entities it drives: it
//! owns only the event queue and the clock. The embedding system (the stream
//! engine in `clonos-engine`) owns its actors and dispatches events popped
//! from [`Simulation::pop`].

pub mod chaos;
pub mod events;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod service;
pub mod time;

pub use chaos::{ChaosEvent, ChaosInjection, ChaosPlan, ChaosSpace};
pub use events::{ActorId, Delivery, Scheduler, Simulation};
pub use metrics::{LatencyRecorder, ThroughputSeries, TimeSeries};
pub use net::Link;
pub use rng::SimRng;
pub use service::ServiceQueue;
pub use time::{VirtualDuration, VirtualTime};
