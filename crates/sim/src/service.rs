//! Service-time accounting for simulated processes.
//!
//! A task in the stream engine has finite processing capacity: each record
//! costs some CPU time. [`ServiceQueue`] models a single-server FIFO queue —
//! work admitted while the server is busy completes after the backlog drains.
//! This is what makes recovery *catch-up* time (§7.4 of the paper: the system
//! must re-process the replayed epoch and drain the backlog that accumulated
//! during the outage) emerge naturally from the model.

use crate::time::{VirtualDuration, VirtualTime};

#[derive(Clone, Debug, Default)]
pub struct ServiceQueue {
    busy_until: VirtualTime,
    total_busy: VirtualDuration,
    jobs: u64,
}

impl ServiceQueue {
    pub fn new() -> ServiceQueue {
        ServiceQueue::default()
    }

    /// Admit a job of the given cost at time `now`; returns its completion
    /// time. Jobs are served FIFO, one at a time.
    pub fn admit(&mut self, now: VirtualTime, cost: VirtualDuration) -> VirtualTime {
        let start = self.busy_until.max(now);
        let done = start + cost;
        self.busy_until = done;
        self.total_busy = self.total_busy + cost;
        self.jobs += 1;
        done
    }

    /// Time at which the server goes idle given no further arrivals.
    pub fn busy_until(&self) -> VirtualTime {
        self.busy_until
    }

    /// Backlog (time to drain) as seen at `now`.
    pub fn backlog(&self, now: VirtualTime) -> VirtualDuration {
        self.busy_until.saturating_sub(now)
    }

    /// Cumulative busy time (for utilization reporting).
    pub fn total_busy(&self) -> VirtualDuration {
        self.total_busy
    }

    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Forget all backlog — used when a process is killed and its replacement
    /// starts fresh.
    pub fn reset(&mut self, now: VirtualTime) {
        self.busy_until = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> VirtualDuration = VirtualDuration::from_millis;

    #[test]
    fn idle_server_serves_immediately() {
        let mut q = ServiceQueue::new();
        let done = q.admit(VirtualTime(1_000), MS(2));
        assert_eq!(done, VirtualTime(1_000) + MS(2));
    }

    #[test]
    fn backlog_accumulates_fifo() {
        let mut q = ServiceQueue::new();
        let d1 = q.admit(VirtualTime::ZERO, MS(10));
        let d2 = q.admit(VirtualTime::ZERO, MS(10));
        let d3 = q.admit(VirtualTime(5_000), MS(10)); // arrives while busy
        assert_eq!(d1, VirtualTime::ZERO + MS(10));
        assert_eq!(d2, VirtualTime::ZERO + MS(20));
        assert_eq!(d3, VirtualTime::ZERO + MS(30));
        assert_eq!(q.backlog(VirtualTime(5_000)), MS(25));
        assert_eq!(q.jobs(), 3);
    }

    #[test]
    fn gap_in_arrivals_leaves_idle_period() {
        let mut q = ServiceQueue::new();
        q.admit(VirtualTime::ZERO, MS(1));
        let done = q.admit(VirtualTime(10_000), MS(1));
        assert_eq!(done, VirtualTime(10_000) + MS(1));
        assert_eq!(q.total_busy(), MS(2));
    }

    #[test]
    fn reset_discards_backlog() {
        let mut q = ServiceQueue::new();
        q.admit(VirtualTime::ZERO, MS(100));
        q.reset(VirtualTime(1_000));
        assert_eq!(q.backlog(VirtualTime(1_000)), VirtualDuration::ZERO);
        let done = q.admit(VirtualTime(1_000), MS(1));
        assert_eq!(done, VirtualTime(1_000) + MS(1));
    }
}
