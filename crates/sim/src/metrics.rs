//! Measurement primitives: time series, throughput windows, and latency
//! percentiles — the raw material for regenerating the paper's Figures 5/6.

use crate::time::{VirtualDuration, VirtualTime};

/// A plain `(time, value)` series, e.g. per-record end-to-end latency samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(VirtualTime, f64)>,
}

impl TimeSeries {
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    pub fn push(&mut self, t: VirtualTime, v: f64) {
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[(VirtualTime, f64)] {
        &self.points
    }

    /// Fold another series into this one, keeping the merged points
    /// time-ordered (stable, so same-time points keep `self`-then-`other`
    /// order).
    pub fn absorb(&mut self, other: &TimeSeries) {
        self.points.extend_from_slice(&other.points);
        self.points.sort_by_key(|&(t, _)| t);
    }

    /// Mean of values with `t >= from && t < to`.
    pub fn mean_in(&self, from: VirtualTime, to: VirtualTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// First time at or after `from` where all subsequent values stay within
    /// `tolerance × baseline`. This is the paper's recovery-time metric: the
    /// instant observed latency returns to within 10 % of pre-failure latency
    /// *and stays there*.
    pub fn stabilization_time(
        &self,
        from: VirtualTime,
        baseline: f64,
        tolerance: f64,
    ) -> Option<VirtualTime> {
        let limit = baseline * tolerance;
        let mut candidate: Option<VirtualTime> = None;
        for &(t, v) in &self.points {
            if t < from {
                continue;
            }
            if v <= limit {
                candidate.get_or_insert(t);
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

/// Throughput bucketed into fixed windows of virtual time.
#[derive(Clone, Debug)]
pub struct ThroughputSeries {
    window: VirtualDuration,
    counts: Vec<u64>,
}

impl ThroughputSeries {
    pub fn new(window: VirtualDuration) -> ThroughputSeries {
        assert!(window.as_micros() > 0);
        ThroughputSeries { window, counts: Vec::new() }
    }

    pub fn record(&mut self, t: VirtualTime, n: u64) {
        let idx = (t.as_micros() / self.window.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        // clonos-lint: allow(panic-path, reason = "index resized in-bounds on the line above")
        self.counts[idx] += n;
    }

    /// `(window_start_time, records_per_second)` pairs.
    pub fn rates(&self) -> Vec<(VirtualTime, f64)> {
        let w = self.window.as_secs_f64();
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (VirtualTime(i as u64 * self.window.as_micros()), c as f64 / w))
            .collect()
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another series (same window size) into this one, element-wise.
    pub fn absorb(&mut self, other: &ThroughputSeries) {
        assert_eq!(
            self.window.as_micros(),
            other.window.as_micros(),
            "cannot absorb a throughput series with a different window"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
    }

    /// Mean rate over buckets fully inside `[from, to)`.
    pub fn mean_rate_in(&self, from: VirtualTime, to: VirtualTime) -> f64 {
        let w = self.window.as_micros();
        let lo = from.as_micros().div_ceil(w);
        let hi = to.as_micros() / w;
        if hi <= lo {
            return 0.0;
        }
        let slice: &[u64] = {
            let end = (hi as usize).min(self.counts.len());
            let start = (lo as usize).min(end);
            &self.counts[start..end]
        };
        if slice.is_empty() {
            return 0.0;
        }
        let total: u64 = slice.iter().sum();
        total as f64 / (slice.len() as f64 * self.window.as_secs_f64())
    }
}

/// Latency distribution with exact percentiles (stores all samples; fine at
/// simulation scale).
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>, // micros
    sorted: bool,
}

impl LatencyRecorder {
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    pub fn record(&mut self, latency: VirtualDuration) {
        self.samples.push(latency.as_micros());
        self.sorted = false;
    }

    /// Fold another recorder's samples into this one.
    pub fn absorb(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Percentile in `[0, 100]`; `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<VirtualDuration> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        Some(VirtualDuration::from_micros(self.samples[rank]))
    }

    pub fn mean(&self) -> Option<VirtualDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Some(VirtualDuration::from_micros((sum / self.samples.len() as u128) as u64))
    }

    pub fn max(&mut self) -> Option<VirtualDuration> {
        self.ensure_sorted();
        self.samples.last().map(|&s| VirtualDuration::from_micros(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_mean_in_window() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(VirtualTime(i * 100), i as f64);
        }
        let m = ts.mean_in(VirtualTime(200), VirtualTime(500)).unwrap();
        assert_eq!(m, 3.0); // values 2,3,4
        assert!(ts.mean_in(VirtualTime(5_000), VirtualTime(6_000)).is_none());
    }

    #[test]
    fn stabilization_requires_staying_low() {
        let mut ts = TimeSeries::new();
        ts.push(VirtualTime(0), 1.0);
        ts.push(VirtualTime(100), 50.0); // failure spike
        ts.push(VirtualTime(200), 1.0); // transient dip
        ts.push(VirtualTime(300), 40.0); // spike again
        ts.push(VirtualTime(400), 1.05);
        ts.push(VirtualTime(500), 1.02);
        let t = ts.stabilization_time(VirtualTime(100), 1.0, 1.10).unwrap();
        assert_eq!(t, VirtualTime(400));
    }

    #[test]
    fn stabilization_none_if_never_recovers() {
        let mut ts = TimeSeries::new();
        ts.push(VirtualTime(0), 10.0);
        ts.push(VirtualTime(1), 10.0);
        assert!(ts.stabilization_time(VirtualTime(0), 1.0, 1.1).is_none());
    }

    #[test]
    fn throughput_buckets_and_rates() {
        let mut tp = ThroughputSeries::new(VirtualDuration::from_secs(1));
        tp.record(VirtualTime(200_000), 10);
        tp.record(VirtualTime(900_000), 5);
        tp.record(VirtualTime(1_100_000), 7);
        let rates = tp.rates();
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0].1, 15.0);
        assert_eq!(rates[1].1, 7.0);
        assert_eq!(tp.total(), 22);
    }

    #[test]
    fn mean_rate_in_range() {
        let mut tp = ThroughputSeries::new(VirtualDuration::from_secs(1));
        for s in 0..10u64 {
            tp.record(VirtualTime(s * 1_000_000 + 1), 100);
        }
        let r = tp.mean_rate_in(VirtualTime(2_000_000), VirtualTime(5_000_000));
        assert_eq!(r, 100.0);
        assert_eq!(tp.mean_rate_in(VirtualTime(50_000_000), VirtualTime(60_000_000)), 0.0);
    }

    #[test]
    fn latency_percentiles() {
        let mut l = LatencyRecorder::new();
        for i in 1..=100u64 {
            l.record(VirtualDuration::from_micros(i));
        }
        assert_eq!(l.percentile(50.0).unwrap().as_micros(), 51); // rank 49.5 rounds up
        assert_eq!(l.percentile(99.0).unwrap().as_micros(), 99);
        assert_eq!(l.percentile(0.0).unwrap().as_micros(), 1);
        assert_eq!(l.max().unwrap().as_micros(), 100);
        assert_eq!(l.mean().unwrap().as_micros(), 50);
    }

    #[test]
    fn empty_recorder_returns_none() {
        let mut l = LatencyRecorder::new();
        assert!(l.percentile(50.0).is_none());
        assert!(l.mean().is_none());
        assert!(l.max().is_none());
    }
}
