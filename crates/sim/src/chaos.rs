//! Seeded chaos-plan generation: randomized failure scenarios sampled from a
//! single seed, FoundationDB-style.
//!
//! A [`ChaosPlan`] is a pure function of `(seed, space)`: the same seed over
//! the same [`ChaosSpace`] always yields the same injections and the same
//! control-plane chaos knobs, so every divergence a sweep finds reproduces
//! from its seed alone. The plan speaks only the simulator's vocabulary
//! (actor ids, node indices, virtual times); the embedding engine maps the
//! events onto its own task/standby/control-plane machinery.
//!
//! The generator deliberately over-samples the scenarios the Clonos paper
//! (§5.3–§5.5) claims to survive and single-kill plans never exercise:
//! concurrent kills of connected tasks, a *follow-up* kill landing while the
//! first recovery is still in progress, node crashes that take out co-located
//! tasks and standbys together, kills aligned with checkpoint barriers, and
//! interrupted standby state transfers.

use crate::rng::SimRng;
use crate::time::{VirtualDuration, VirtualTime};

/// Address of a simulated entity (mirror of [`crate::events::ActorId`]).
pub type ActorId = u64;

/// One discrete chaos injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Kill one task process (whatever incarnation is live at that instant —
    /// a kill landing mid-recovery kills the replacement).
    KillTask(ActorId),
    /// Crash a whole node: every co-located task *and* every standby hosted
    /// there dies at once.
    KillNode(u32),
    /// Interrupt an in-flight standby state transfer for this task: the
    /// standby's preloaded state is lost and the next activation must
    /// cold-start from the snapshot store.
    InterruptStandby(ActorId),
    /// Throttle this task's record consumption for a sustained window (the
    /// plan-level `slow_factor`/`slow_window` knobs say how hard and how
    /// long). Queues back up behind the slow consumer, so checkpoint
    /// barriers arrive into deep backlogs — the scenario where aligned and
    /// unaligned checkpointing diverge hardest.
    SlowTask(ActorId),
}

/// A timed injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosInjection {
    pub at: VirtualTime,
    pub event: ChaosEvent,
}

/// The sampling domain for a chaos plan.
#[derive(Clone, Debug)]
pub struct ChaosSpace {
    /// Killable task ids.
    pub tasks: Vec<ActorId>,
    /// Number of cluster nodes (node indices are `0..num_nodes`).
    pub num_nodes: u32,
    /// Run horizon; injections land in `[warmup, horizon - cooldown]`.
    pub horizon: VirtualDuration,
    /// No injection before this instant (let the job reach steady state and
    /// complete a checkpoint first).
    pub warmup: VirtualDuration,
    /// No injection after `horizon - cooldown` (leave time to recover so the
    /// output oracle sees a drained pipeline).
    pub cooldown: VirtualDuration,
    /// Checkpoint interval of the run, used to align some kills with barrier
    /// propagation (failures during alignment are a distinct scenario class).
    pub checkpoint_interval: VirtualDuration,
    /// Upper bound on discrete injections per plan (at least 1 is generated).
    pub max_events: usize,
}

/// A complete, reproducible chaos scenario: discrete injections plus the
/// control-plane degradation knobs the run should apply.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Time-sorted injections.
    pub injections: Vec<ChaosInjection>,
    /// Probability that an eligible recovery control message is dropped.
    pub ctrl_loss_prob: f64,
    /// Probability that an eligible recovery control message is delayed.
    pub ctrl_delay_prob: f64,
    /// Maximum extra delay applied to a delayed control message.
    pub ctrl_max_delay: VirtualDuration,
    /// Seeded jitter bound added to the failure-detection delay.
    pub detection_jitter: VirtualDuration,
    /// Consumption-cost multiplier applied by [`ChaosEvent::SlowTask`]
    /// injections (1 = no-op; sampled well past the point where the slowed
    /// task's service rate falls below its arrival rate).
    pub slow_factor: u64,
    /// How long each [`ChaosEvent::SlowTask`] throttle lasts.
    pub slow_window: VirtualDuration,
}

impl ChaosPlan {
    /// Sample a plan from a single seed. Deterministic: same `(seed, space)`
    /// in, same plan out.
    pub fn generate(seed: u64, space: &ChaosSpace) -> ChaosPlan {
        assert!(!space.tasks.is_empty(), "chaos space needs at least one task");
        let mut rng = SimRng::new(seed).fork(0xCA05);
        let lo = space.warmup.as_micros();
        let hi = space
            .horizon
            .as_micros()
            .saturating_sub(space.cooldown.as_micros())
            .max(lo + 1);
        let n = 1 + rng.gen_range(space.max_events.max(1) as u64) as usize;
        let mut injections: Vec<ChaosInjection> = Vec::with_capacity(n + 2);

        for _ in 0..n {
            let at = VirtualTime(sample_instant(&mut rng, lo, hi, space.checkpoint_interval));
            let roll = rng.gen_f64();
            if roll < 0.15 && space.num_nodes > 1 {
                injections.push(ChaosInjection {
                    at,
                    event: ChaosEvent::KillNode(rng.gen_range(space.num_nodes as u64) as u32),
                });
            } else if roll < 0.30 {
                let t = pick(&mut rng, &space.tasks);
                injections.push(ChaosInjection { at, event: ChaosEvent::InterruptStandby(t) });
            } else if roll < 0.45 {
                // Sustained slow consumer. Often paired with a kill snapped
                // to the next checkpoint boundary inside the slow window, so
                // the victim dies while barriers sit in (or behind) the
                // backlog the throttle built up — mid-alignment for aligned
                // runs, mid-capture for unaligned ones.
                let t = pick(&mut rng, &space.tasks);
                injections.push(ChaosInjection { at, event: ChaosEvent::SlowTask(t) });
                if rng.gen_f64() < 0.40 {
                    let cp_us = space.checkpoint_interval.as_micros();
                    let kill_at = match at.as_micros().checked_div(cp_us) {
                        None => at.as_micros() + rng.gen_range_in(150, 1_200_000),
                        Some(intervals) => {
                            (intervals + 1) * cp_us + rng.gen_range(100_000)
                        }
                    };
                    injections.push(ChaosInjection {
                        at: VirtualTime(kill_at.min(hi)),
                        event: ChaosEvent::KillTask(t),
                    });
                }
            } else {
                let t = pick(&mut rng, &space.tasks);
                injections.push(ChaosInjection { at, event: ChaosEvent::KillTask(t) });
                // A third of kills get a companion: either a concurrent kill
                // of another task (multi-failure) or a follow-up kill landing
                // while the first recovery is still in flight.
                let companion = rng.gen_f64();
                if companion < 0.18 {
                    let other = pick(&mut rng, &space.tasks);
                    injections.push(ChaosInjection { at, event: ChaosEvent::KillTask(other) });
                } else if companion < 0.34 {
                    // 150 µs – 1.2 s later: inside detection + gather + replay
                    // for any of the supported fault-tolerance modes.
                    let gap = rng.gen_range_in(150, 1_200_000);
                    injections.push(ChaosInjection {
                        at: VirtualTime((at.as_micros() + gap).min(hi)),
                        event: ChaosEvent::KillTask(t),
                    });
                }
            }
        }

        injections.sort_by_key(|i| (i.at, event_rank(&i.event)));

        // Control-plane degradation: half the plans run over a clean control
        // plane, the rest drop/delay recovery messages at a seeded rate.
        let (loss, delay_p) = if rng.gen_bool(0.5) {
            (0.0, 0.0)
        } else {
            (rng.gen_f64() * 0.25, rng.gen_f64() * 0.35)
        };
        ChaosPlan {
            injections,
            ctrl_loss_prob: loss,
            ctrl_delay_prob: delay_p,
            ctrl_max_delay: VirtualDuration::from_micros(rng.gen_range_in(50_000, 600_000)),
            detection_jitter: VirtualDuration::from_micros(rng.gen_range_in(1_000, 150_000)),
            slow_factor: rng.gen_range_in(60, 160),
            slow_window: VirtualDuration::from_micros(rng.gen_range_in(2_000_000, 5_000_000)),
        }
    }

    /// Number of discrete injections.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }
}

/// Sample an injection instant: mostly uniform, but 30% of draws snap near a
/// checkpoint boundary (±50 ms) to hit barrier alignment / state dispatch.
fn sample_instant(rng: &mut SimRng, lo: u64, hi: u64, cp: VirtualDuration) -> u64 {
    let uniform = rng.gen_range_in(lo, hi);
    let cp_us = cp.as_micros();
    if cp_us == 0 || rng.gen_f64() >= 0.30 {
        return uniform;
    }
    let boundary = (uniform / cp_us + 1) * cp_us;
    let near = boundary.saturating_sub(50_000) + rng.gen_range(100_000);
    near.clamp(lo, hi - 1)
}

fn pick(rng: &mut SimRng, tasks: &[ActorId]) -> ActorId {
    tasks[rng.gen_range(tasks.len() as u64) as usize]
}

/// Stable secondary sort key so same-instant injections order identically
/// across runs regardless of generation order.
fn event_rank(e: &ChaosEvent) -> (u8, u64) {
    match *e {
        ChaosEvent::KillNode(n) => (0, n as u64),
        ChaosEvent::KillTask(t) => (1, t),
        ChaosEvent::InterruptStandby(t) => (2, t),
        ChaosEvent::SlowTask(t) => (3, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ChaosSpace {
        ChaosSpace {
            tasks: (1..=8).collect(),
            num_nodes: 4,
            horizon: VirtualDuration::from_secs(30),
            warmup: VirtualDuration::from_secs(6),
            cooldown: VirtualDuration::from_secs(8),
            checkpoint_interval: VirtualDuration::from_secs(5),
            max_events: 4,
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let s = space();
        for seed in 0..50 {
            let a = ChaosPlan::generate(seed, &s);
            let b = ChaosPlan::generate(seed, &s);
            assert_eq!(a.injections, b.injections, "seed {seed}");
            assert_eq!(a.ctrl_loss_prob, b.ctrl_loss_prob, "seed {seed}");
            assert_eq!(a.ctrl_max_delay, b.ctrl_max_delay, "seed {seed}");
            assert_eq!(a.detection_jitter, b.detection_jitter, "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = space();
        let plans: Vec<ChaosPlan> = (0..20).map(|i| ChaosPlan::generate(i, &s)).collect();
        let distinct = plans
            .iter()
            .map(|p| format!("{:?}", p.injections))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct > 15, "only {distinct}/20 distinct plans");
    }

    #[test]
    fn injections_respect_window_and_ordering() {
        let s = space();
        for seed in 0..200 {
            let p = ChaosPlan::generate(seed, &s);
            assert!(!p.is_empty());
            assert!(p.len() <= 2 * s.max_events, "seed {seed}: {} events", p.len());
            let lo = s.warmup.as_micros();
            let hi = s.horizon.as_micros() - s.cooldown.as_micros();
            for w in p.injections.windows(2) {
                assert!(w[0].at <= w[1].at, "seed {seed}: unsorted");
            }
            for i in &p.injections {
                assert!(
                    (lo..=hi).contains(&i.at.as_micros()),
                    "seed {seed}: injection at {:?} outside [{lo}, {hi}]",
                    i.at
                );
                if let ChaosEvent::KillNode(n) = i.event {
                    assert!(n < s.num_nodes);
                }
            }
        }
    }

    #[test]
    fn sweep_covers_every_event_class() {
        let s = space();
        let (mut kills, mut nodes, mut standbys, mut followups, mut lossy) = (0, 0, 0, 0, 0);
        let (mut slows, mut slow_then_kill) = (0, 0);
        for seed in 0..300 {
            let p = ChaosPlan::generate(seed, &s);
            if p.ctrl_loss_prob > 0.0 || p.ctrl_delay_prob > 0.0 {
                lossy += 1;
            }
            assert!(p.slow_factor >= 60, "seed {seed}: slow_factor={}", p.slow_factor);
            assert!(p.slow_window >= VirtualDuration::from_secs(2), "seed {seed}");
            let mut last_kill: Option<(VirtualTime, ActorId)> = None;
            let mut last_slow: Option<ActorId> = None;
            for i in &p.injections {
                match i.event {
                    ChaosEvent::KillTask(t) => {
                        kills += 1;
                        if let Some((at, prev)) = last_kill {
                            if prev == t && i.at > at {
                                followups += 1;
                            }
                        }
                        if last_slow == Some(t) {
                            slow_then_kill += 1;
                        }
                        last_kill = Some((i.at, t));
                    }
                    ChaosEvent::KillNode(_) => nodes += 1,
                    ChaosEvent::InterruptStandby(_) => standbys += 1,
                    ChaosEvent::SlowTask(t) => {
                        slows += 1;
                        last_slow = Some(t);
                    }
                }
            }
        }
        assert!(kills > 150, "kills={kills}");
        assert!(nodes > 20, "nodes={nodes}");
        assert!(standbys > 30, "standbys={standbys}");
        assert!(followups > 10, "followups={followups}");
        assert!(slows > 40, "slows={slows}");
        assert!(slow_then_kill > 15, "slow_then_kill={slow_then_kill}");
        assert!((80..=220).contains(&lossy), "lossy={lossy}/300");
    }
}
