//! Network links: latency + seeded jitter with a FIFO guarantee.
//!
//! Clonos assumes reliable FIFO channels between each pair of tasks (§2.3).
//! A [`Link`] models a TCP-like connection: each send experiences base
//! latency plus jitter, but deliveries on the *same* link never reorder —
//! the link remembers its last scheduled delivery and never schedules an
//! earlier one. Cross-link arrival order *does* vary with the seed, which is
//! exactly the "record arrival order" nondeterminism of §4.1.

use crate::rng::SimRng;
use crate::time::{VirtualDuration, VirtualTime};

/// Latency model for one FIFO channel.
#[derive(Clone, Debug)]
pub struct Link {
    base: VirtualDuration,
    jitter: VirtualDuration,
    rng: SimRng,
    last_delivery: VirtualTime,
    sends: u64,
}

impl Link {
    pub fn new(base: VirtualDuration, jitter: VirtualDuration, rng: SimRng) -> Link {
        Link { base, jitter, rng, last_delivery: VirtualTime::ZERO, sends: 0 }
    }

    /// Compute the delivery time of a message sent at `now`, preserving FIFO.
    pub fn delivery_time(&mut self, now: VirtualTime) -> VirtualTime {
        let j = if self.jitter.as_micros() == 0 {
            0
        } else {
            self.rng.gen_range(self.jitter.as_micros() + 1)
        };
        let t = now + self.base + VirtualDuration::from_micros(j);
        // FIFO: never deliver before (or at the same instant as) the previous
        // message on this link; the event queue breaks exact ties by sequence
        // anyway, but strict monotonicity keeps reasoning simple.
        let t = t.max(self.last_delivery + VirtualDuration::from_micros(1));
        self.last_delivery = t;
        self.sends += 1;
        t
    }

    /// Number of messages sent over this link.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Reset FIFO bookkeeping, e.g. when a connection is re-established
    /// during network reconfiguration (§6.2).
    pub fn reset(&mut self) {
        self.last_delivery = VirtualTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(base_us: u64, jitter_us: u64, seed: u64) -> Link {
        Link::new(
            VirtualDuration::from_micros(base_us),
            VirtualDuration::from_micros(jitter_us),
            SimRng::new(seed),
        )
    }

    #[test]
    fn fifo_is_preserved_despite_jitter() {
        let mut l = link(100, 500, 42);
        let mut prev = VirtualTime::ZERO;
        for i in 0..1_000u64 {
            let t = l.delivery_time(VirtualTime(i)); // sends 1us apart
            assert!(t > prev, "reordered at send {i}");
            prev = t;
        }
    }

    #[test]
    fn latency_at_least_base() {
        let mut l = link(250, 100, 7);
        let t = l.delivery_time(VirtualTime(1_000));
        assert!(t >= VirtualTime(1_250));
        assert!(t <= VirtualTime(1_350));
    }

    #[test]
    fn jitter_varies_with_seed() {
        let mut a = link(100, 1_000, 1);
        let mut b = link(100, 1_000, 2);
        let ta: Vec<_> = (0..16).map(|i| a.delivery_time(VirtualTime(i * 10_000))).collect();
        let tb: Vec<_> = (0..16).map(|i| b.delivery_time(VirtualTime(i * 10_000))).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn zero_jitter_is_deterministic_constant() {
        let mut l = link(100, 0, 3);
        assert_eq!(l.delivery_time(VirtualTime(0)), VirtualTime(100));
        assert_eq!(l.delivery_time(VirtualTime(50)), VirtualTime(150));
        assert_eq!(l.sends(), 2);
    }

    #[test]
    fn reset_clears_fifo_floor() {
        let mut l = link(10, 0, 3);
        let t = l.delivery_time(VirtualTime(1_000_000));
        assert_eq!(t, VirtualTime(1_000_010));
        l.reset();
        // After reconfiguration a fresh connection may deliver earlier again.
        assert_eq!(l.delivery_time(VirtualTime(5)), VirtualTime(15));
    }
}
