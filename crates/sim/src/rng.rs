//! Seeded deterministic randomness.
//!
//! A [`SimRng`] is a SplitMix64 generator. Every simulated component that
//! needs randomness forks its own stream from the root seed via
//! [`SimRng::fork`], so adding a new consumer never perturbs the draws seen
//! by existing ones (a classic pitfall when sharing a single RNG).

/// SplitMix64: tiny, fast, and statistically solid for simulation purposes.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    pub fn new(seed: u64) -> SimRng {
        // Avoid the all-zero fixed point and decorrelate trivially-related seeds.
        SimRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0 }
    }

    /// Derive an independent stream for a named sub-component.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut r = SimRng { state: self.state ^ stream.wrapping_mul(0xBF58_476D_1CE4_E5B9) };
        // Burn a few outputs to decorrelate.
        r.next_u64();
        r.next_u64();
        r
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift technique; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.gen_range(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponential draw with the given mean (for inter-arrival jitter).
    #[inline]
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.gen_f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Zipf-like skewed index in `[0, n)` with exponent `theta` in `(0, 1)`;
    /// used by workload generators for hot keys.
    pub fn gen_zipf(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0);
        let u = self.gen_f64();
        let idx = (n as f64 * u.powf(1.0 / (1.0 - theta).max(1e-6))) as u64;
        idx.min(n - 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let root = SimRng::new(7);
        let mut s1 = root.fork(1);
        let mut s2 = root.fork(2);
        let same = (0..32).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(same, 0);
        // Forking is itself deterministic.
        let mut s1b = root.fork(1);
        let mut s1c = root.fork(1);
        assert_eq!(s1b.next_u64(), s1c.next_u64());
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range_in(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn zipf_is_skewed_toward_zero() {
        let mut r = SimRng::new(11);
        let mut low = 0;
        for _ in 0..10_000 {
            if r.gen_zipf(100, 0.8) < 10 {
                low += 1;
            }
        }
        // With theta=0.8, far more than 10% of draws land in the first decile.
        assert!(low > 3_000, "low={low}");
    }

    #[test]
    fn exp_mean_roughly_matches() {
        let mut r = SimRng::new(13);
        let mean: f64 = (0..20_000).map(|_| r.gen_exp(5.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 5.0).abs() < 0.25, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left input in order");
    }
}
