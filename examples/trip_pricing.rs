//! Car-trip fare aggregation with **processing-time windows** — the paper's
//! second motivating workload. Processing-time windowing is inherently
//! nondeterministic (§4.1): window assignment reads the local clock and
//! firing depends on timers. This example compares recovery under Clonos
//! and under the Flink-style global rollback for the same failure.
//!
//! Run with: `cargo run -p clonos-integration --release --example trip_pricing`

use clonos::config::{ClonosConfig, SharingDepth};
use clonos_engine::operators::{WindowAggregate, WindowOp, WindowTime};
use clonos_engine::*;
use clonos_sim::{VirtualDuration, VirtualTime};

fn build() -> JobGraph {
    let mut graph = JobGraph::new("trip-pricing");
    // Trips: [driver, fare_cents]
    let src =
        graph.add_source("trips", 2, SourceSpec::new("trips").rate(4_000).key_field(0));
    let windows = graph.add_operator(
        "fare-per-driver-1s",
        2,
        factory(|| {
            WindowOp::tumbling(WindowTime::Processing, 1_000_000, WindowAggregate::SumInt(1))
        }),
    );
    let sink = graph.add_sink("fares", 2, SinkSpec { topic: "fares".into() });
    graph.connect(src, windows, Partitioning::Hash);
    graph.connect(windows, sink, Partitioning::Hash);
    graph
}

fn run(ft: FtMode, label: &str) {
    let config = EngineConfig::default().with_seed(99).with_ft(ft);
    let mut runner = JobRunner::new(build(), config);
    for p in 0..2 {
        runner.populate(
            "trips",
            p,
            (0..200_000i64)
                .filter(|i| (*i as usize) % 2 == p)
                .map(|i| Row::new(vec![Datum::Int(i % 200), Datum::Int(500 + i % 3_000)])),
        );
    }
    let report = runner
        .with_failures(FailurePlan::none().kill_at(VirtualTime(12_000_000), 3))
        .run_for(VirtualDuration::from_secs(40));
    let recovery = report
        .recovery_time(1.25)
        .map(|d| format!("{:.2}s", d.as_secs_f64()))
        .unwrap_or_else(|| "<0.25s (no sustained deviation)".into());
    println!("--- {label} ---");
    println!("window results committed: {}", report.records_out);
    println!("duplicates: {}  losses: {}", report.duplicate_idents().len(), report.ident_gaps().len());
    println!("p50 output latency: {:?}", report.latency_p50);
    println!("recovery time (latency back within 25% of baseline): {recovery}");
    for e in report
        .events
        .iter()
        .filter(|e| e.what.contains("FAILURE") || e.what.contains("replay complete") || e.what.contains("rollback"))
    {
        println!("  {} {}", e.at, e.what);
    }
    assert!(report.duplicate_idents().is_empty(), "{label}: duplicated window results");
    assert!(report.ident_gaps().is_empty(), "{label}: lost window results");
    println!();
}

fn main() {
    println!("Processing-time windows + one operator failure, two FT stacks:\n");
    run(
        FtMode::Clonos(ClonosConfig::exactly_once(SharingDepth::Full)),
        "Clonos (causal local recovery)",
    );
    run(FtMode::GlobalRollback, "Flink baseline (global rollback, transactional sink)");
    println!("✓ both are exactly-once; Clonos recovered locally in well under a");
    println!("  second of availability loss, the baseline restarted the world and");
    println!("  its output latency is dominated by the transactional sink commit.");
}
