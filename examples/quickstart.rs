//! Quickstart: build a small streaming job, run it on the simulated cluster
//! with Clonos fault tolerance, kill an operator mid-run, and verify that
//! the output is exactly-once anyway.
//!
//! Run with: `cargo run -p clonos-integration --release --example quickstart`

use clonos::config::{ClonosConfig, SharingDepth};
use clonos_engine::operators::map_op;
use clonos_engine::*;
use clonos_sim::{VirtualDuration, VirtualTime};

fn main() {
    // 1. Describe the dataflow: source → map → sink.
    let mut graph = JobGraph::new("quickstart");
    let src = graph.add_source(
        "numbers",
        1,
        SourceSpec::new("numbers").rate(5_000).key_field(0),
    );
    let doubler = graph.add_operator(
        "double",
        1,
        map_op(|rec| {
            let v = rec.row.int(1);
            (rec.key, Row::new(vec![Datum::Int(v), Datum::Int(v * 2)]))
        }),
    );
    let sink = graph.add_sink("out", 1, SinkSpec { topic: "out".into() });
    graph.connect(src, doubler, Partitioning::Forward);
    graph.connect(doubler, sink, Partitioning::Hash);

    // 2. Configure the engine with Clonos exactly-once fault tolerance.
    let config = EngineConfig::default()
        .with_seed(7)
        .with_ft(FtMode::Clonos(ClonosConfig::exactly_once(SharingDepth::Full)));

    // 3. Load input into the durable source topic.
    let mut runner = JobRunner::new(graph, config);
    runner.populate(
        "numbers",
        0,
        (0..60_000i64).map(|i| Row::new(vec![Datum::Int(i % 10), Datum::Int(i)])),
    );

    // 4. Kill the map operator 7 s in (after the first checkpoint), then run.
    let report = runner
        .with_failures(FailurePlan::none().kill_at(VirtualTime(7_000_000), 2))
        .run_for(VirtualDuration::from_secs(25));

    // 5. Inspect the outcome.
    println!("events:");
    for e in &report.events {
        println!("  {} {}", e.at, e.what);
    }
    println!("\ningested : {}", report.records_in);
    println!("committed: {}", report.records_out);
    println!("dup idents: {:?}", report.duplicate_idents());
    println!("lost      : {:?}", report.ident_gaps());
    println!(
        "p50 latency: {:?}   p99: {:?}",
        report.latency_p50, report.latency_p99
    );
    assert_eq!(report.records_in, report.records_out, "exactly-once violated!");
    assert!(report.duplicate_idents().is_empty());
    assert!(report.ident_gaps().is_empty());
    println!("\n✓ the operator failed, a standby took over, the epoch was replayed");
    println!("✓ causally, and every record was committed exactly once.");
}
