//! Real-time fraud detection — the paper's motivating workload class: an
//! event-driven pipeline whose scoring UDF is *nondeterministic*: it calls
//! an external risk service, reads the wall clock, and draws random audit
//! samples. Classic local recovery schemes cannot replay such an operator
//! consistently; Clonos logs every nondeterministic outcome and reproduces
//! it after the failure.
//!
//! Run with: `cargo run -p clonos-integration --release --example fraud_detection`

use clonos::config::{ClonosConfig, SharingDepth};
use clonos_engine::operator::OpCtx;
use clonos_engine::operators::ProcessOp;
use clonos_engine::*;
use clonos_sim::{VirtualDuration, VirtualTime};

fn main() {
    let mut graph = JobGraph::new("fraud-detection");
    // Transactions: [account, amount_cents]
    let src = graph.add_source(
        "transactions",
        2,
        SourceSpec::new("transactions").rate(4_000).key_field(0),
    );
    let scorer = graph.add_operator(
        "risk-scorer",
        2,
        factory(|| {
            ProcessOp::new(|_input, tx: &Record, ctx: &mut OpCtx<'_>| {
                let account = tx.row.int(0);
                let amount = tx.row.int(1);
                // Nondeterminism #1: external risk service (stock-price-like
                // signal that changes over time).
                let risk = ctx.external_get(account as u64)?;
                // Nondeterminism #2: wall-clock decision deadline.
                let scored_at = ctx.timestamp()?;
                // Nondeterminism #3: random audit sampling.
                let audited = ctx.random(100) < 5;
                // Stateful per-account running total.
                let total = ctx.state.value(0, tx.key).map(|r| r.int(0)).unwrap_or(0) + amount;
                ctx.state.set_value(0, tx.key, Row::new(vec![Datum::Int(total)]));
                let flagged = amount > 8_000 || (risk > 90_000 && total > 50_000);
                ctx.emit(
                    tx.key,
                    tx.event_time,
                    Row::new(vec![
                        Datum::Int(account),
                        Datum::Int(amount),
                        Datum::Int(risk),
                        Datum::Int(scored_at as i64),
                        Datum::Bool(flagged),
                        Datum::Bool(audited),
                    ]),
                );
                Ok(())
            })
        }),
    );
    let sink = graph.add_sink("alerts", 2, SinkSpec { topic: "alerts".into() });
    graph.connect(src, scorer, Partitioning::Hash);
    graph.connect(scorer, sink, Partitioning::Hash);

    let config = EngineConfig::default()
        .with_seed(2026)
        .with_ft(FtMode::Clonos(ClonosConfig::exactly_once(SharingDepth::Full)));
    let mut runner = JobRunner::new(graph, config);
    for p in 0..2 {
        runner.populate(
            "transactions",
            p,
            (0..80_000i64)
                .filter(|i| (*i as usize) % 2 == p)
                .map(|i| Row::new(vec![Datum::Int(i % 500), Datum::Int((i * 37) % 10_000)])),
        );
    }

    // Kill one scorer instance mid-epoch; the standby must reproduce the
    // *same* risk values / timestamps / audit flags during replay.
    let report = runner
        .with_failures(FailurePlan::none().kill_at(VirtualTime(8_200_000), 3))
        .run_for(VirtualDuration::from_secs(30));

    let flagged = report
        .sink_output
        .iter()
        .filter(|(_, _, rec)| matches!(rec.row.get(4), Datum::Bool(true)))
        .count();
    let audited = report
        .sink_output
        .iter()
        .filter(|(_, _, rec)| matches!(rec.row.get(5), Datum::Bool(true)))
        .count();
    println!("transactions scored : {}", report.records_out);
    println!("fraud alerts        : {flagged}");
    println!("audit samples       : {audited}");
    println!("duplicates          : {}", report.duplicate_idents().len());
    println!("losses              : {}", report.ident_gaps().len());
    for e in report.events.iter().filter(|e| e.what.contains("replay") || e.what.contains("FAILURE")) {
        println!("  {} {}", e.at, e.what);
    }
    assert!(report.duplicate_idents().is_empty());
    assert!(report.ident_gaps().is_empty());
    println!("\n✓ every alert was raised exactly once despite the failure —");
    println!("✓ external calls were not re-issued; replay used the causal log.");
}
