//! Sim-scheduler vs multi-threaded-runtime equivalence: the same job on the
//! same inputs must produce the identical effective (read-committed) sink
//! output whichever scheduler drives it, failure-free.
//!
//! The workloads keep per-key processing order deterministic so the
//! comparison is byte-exact: pure keyed operators, hash edges, and a key
//! cardinality divisible by every parallelism used (each key then lives in
//! exactly one source partition, and per-pair FIFO links preserve its
//! record order end to end). Inputs are sized to drain fully well before
//! the horizon, so `records_in` must equal the row count on both sides.

use clonos::config::{ClonosConfig, SharingDepth};
use clonos_bench::{synthetic_chain, synthetic_rows};
use clonos_engine::operators::ReduceOp;
use clonos_engine::*;
use clonos_sim::VirtualDuration;
use std::collections::BTreeMap;

const SEED: u64 = 23;
const RATE: u64 = 50_000;
const KEYS: i64 = 8; // divisible by every parallelism below
const ROWS: i64 = 4_000;
const SECS: u64 = 10;

/// Multiset of effective output rows, canonical bytes → count.
fn multiset(r: &RunReport) -> BTreeMap<bytes::Bytes, u64> {
    let mut m = BTreeMap::new();
    for b in r.output_multiset() {
        *m.entry(b).or_insert(0) += 1;
    }
    m
}

fn populate(runner: &mut JobRunner, rows: &[Row]) {
    let parts = runner.cluster.topic("in").expect("no input topic").num_partitions();
    for p in 0..parts {
        let slice: Vec<Row> = rows.iter().skip(p).step_by(parts).cloned().collect();
        runner.populate("in", p, slice);
    }
}

fn chain_runner(depth: usize, parallelism: usize, ft: FtMode) -> JobRunner {
    let job = synthetic_chain(depth, parallelism, RATE);
    let cfg = EngineConfig::default().with_seed(SEED).with_ft(ft);
    let mut runner = JobRunner::new(job, cfg);
    populate(&mut runner, &synthetic_rows(ROWS, KEYS));
    runner
}

/// src("in") → keyed running-sum (ReduceOp) → sink("out").
fn keyed_agg_runner(parallelism: usize, ft: FtMode) -> JobRunner {
    let mut g = JobGraph::new("keyed-agg");
    let src = g.add_source("src", parallelism, SourceSpec::new("in").rate(RATE).key_field(0));
    let agg = g.add_operator(
        "sum",
        parallelism,
        factory(|| {
            ReduceOp::new(|acc: Option<&Row>, row: &Row| {
                let prev = acc.map(|a| a.int(1)).unwrap_or(0);
                Row::new(vec![row.0[0].clone(), Datum::Int(prev + row.int(1))])
            })
        }),
    );
    g.connect(src, agg, Partitioning::Hash);
    let sink = g.add_sink("sink", parallelism, SinkSpec { topic: "out".into() });
    g.connect(agg, sink, Partitioning::Hash);
    let cfg = EngineConfig::default().with_seed(SEED).with_ft(ft);
    let mut runner = JobRunner::new(g, cfg);
    populate(&mut runner, &synthetic_rows(ROWS, KEYS));
    runner
}

fn assert_equivalent(sim: &RunReport, par: &RunReport) {
    // Fully drained on both sides — otherwise clock skew, not semantics,
    // could explain a mismatch.
    assert_eq!(sim.records_in, ROWS as u64, "sim run did not drain its input");
    assert_eq!(par.records_in, ROWS as u64, "parallel run did not drain its input");
    assert_eq!(sim.records_out, par.records_out, "record counts diverge");
    assert_eq!(multiset(sim), multiset(par), "effective sink output diverges");
    assert!(sim.duplicate_idents().is_empty());
    assert!(par.duplicate_idents().is_empty());
}

#[test]
fn chain_no_ft_two_wide_matches_sim() {
    let sim = chain_runner(3, 2, FtMode::None).run_for(VirtualDuration::from_secs(SECS));
    let par = chain_runner(3, 2, FtMode::None).run_parallel_for(
        VirtualDuration::from_secs(SECS),
        &ParallelConfig { workers: 4, ..ParallelConfig::default() },
    );
    assert_equivalent(&sim, &par);
    // Sim runs report zeroed runtime counters; parallel runs report theirs.
    assert_eq!(sim.runtime_stats, RuntimeStats::default());
    assert_eq!(par.runtime_stats.workers, 4);
    assert!(par.runtime_stats.max_worker_events > 0);
}

#[test]
fn chain_clonos_four_wide_matches_sim() {
    let ft = || FtMode::Clonos(ClonosConfig::exactly_once(SharingDepth::Full));
    let sim = chain_runner(5, 4, ft()).run_for(VirtualDuration::from_secs(SECS));
    let par = chain_runner(5, 4, ft()).run_parallel_for(
        VirtualDuration::from_secs(SECS),
        &ParallelConfig { workers: 4, ..ParallelConfig::default() },
    );
    assert_equivalent(&sim, &par);
    // Checkpoints completed under the parallel coordinator too.
    assert!(par.last_completed_checkpoint > 0, "no checkpoint completed in parallel run");
}

#[test]
fn keyed_aggregation_matches_sim() {
    let ft = || FtMode::Clonos(ClonosConfig::exactly_once(SharingDepth::Full));
    let sim = keyed_agg_runner(2, ft()).run_for(VirtualDuration::from_secs(SECS));
    let par = keyed_agg_runner(2, ft()).run_parallel_for(
        VirtualDuration::from_secs(SECS),
        &ParallelConfig { workers: 4, ..ParallelConfig::default() },
    );
    assert_equivalent(&sim, &par);
    assert_eq!(sim.records_out, ROWS as u64);
}

#[test]
fn worker_count_does_not_change_output() {
    let one = chain_runner(4, 4, FtMode::None).run_parallel_for(
        VirtualDuration::from_secs(SECS),
        &ParallelConfig { workers: 1, ..ParallelConfig::default() },
    );
    let eight = chain_runner(4, 4, FtMode::None).run_parallel_for(
        VirtualDuration::from_secs(SECS),
        &ParallelConfig { workers: 8, ..ParallelConfig::default() },
    );
    assert_eq!(one.records_in, ROWS as u64);
    assert_eq!(eight.records_in, ROWS as u64);
    assert_eq!(one.records_out, eight.records_out);
    assert_eq!(multiset(&one), multiset(&eight));
    assert_eq!(one.runtime_stats.workers, 1);
    assert_eq!(eight.runtime_stats.workers, 8);
}

#[test]
fn tiny_mailboxes_backpressure_without_losing_records() {
    let par = chain_runner(4, 2, FtMode::None).run_parallel_for(
        VirtualDuration::from_secs(SECS),
        &ParallelConfig { workers: 2, mailbox_capacity: 4, quantum: 8 },
    );
    let sim = chain_runner(4, 2, FtMode::None).run_for(VirtualDuration::from_secs(SECS));
    assert_equivalent(&sim, &par);
    assert!(
        par.runtime_stats.mailbox_depth_highwater <= 4,
        "mailbox bound violated: {}",
        par.runtime_stats.mailbox_depth_highwater
    );
}
