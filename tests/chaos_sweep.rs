//! Seeded chaos sweep: randomized multi-fault scenarios (task kills, node
//! crashes, interrupted standby transfers, lossy/laggy recovery control
//! plane, jittered detection) replayed against the exactly-once oracle.
//!
//! Every scenario is a pure function of its seed, so any divergence this
//! sweep finds reproduces with `CHAOS_SEEDS=<n>` (or by pinning the seed in
//! a one-off test). The in-tree default keeps debug-mode test time modest;
//! `scripts/chaos.sh` drives the full ≥100-seed sweep in release mode.

use clonos_engine::config::CheckpointMode;
use clonos_engine::{FailurePlan, FtMode};
use clonos_integration::{
    assert_exactly_once, assert_matches_reference, at_least_once_orphan, clonos_full,
    oracle_reference, oracle_space, run_oracle, run_oracle_plan, run_oracle_with, OracleReference,
};
use clonos_sim::chaos::ChaosPlan;
use clonos_sim::{VirtualDuration, VirtualTime};
use proptest::prelude::*;

fn sweep_seeds() -> u64 {
    std::env::var("CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(6)
}

/// Exactly-once modes: no duplicate idents, no lost records, and the sink
/// content is a byte-identical per-key prefix of the failure-free reference.
fn sweep_exactly_once(ft: impl Fn() -> FtMode, mode: &str, reference: &OracleReference) {
    let space = oracle_space();
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle(ft(), seed, Some(&plan));
        let label = format!("{mode} seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        assert_exactly_once(&report, &label);
        assert_matches_reference(&report, reference, &label);
    }
}

#[test]
fn chaos_sweep_clonos_exactly_once() {
    let reference = oracle_reference();
    sweep_exactly_once(clonos_full, "clonos", &reference);
}

#[test]
fn chaos_sweep_global_rollback_exactly_once() {
    let reference = oracle_reference();
    sweep_exactly_once(|| FtMode::GlobalRollback, "global-rollback", &reference);
}

#[test]
fn chaos_sweep_incremental_long_chains_exactly_once() {
    // Incremental checkpoints with the rebase interval pushed past the run
    // horizon: every checkpoint after a task's first is a delta, so restores
    // and standby activations always reconstruct from the longest possible
    // chain. Chaos (kills, node crashes, interrupted transfers) must still
    // leave output byte-identical to the failure-free reference.
    let reference = oracle_reference();
    let space = oracle_space();
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle_with(clonos_full(), seed, Some(&plan), |cfg| {
            cfg.incremental_checkpoints = true;
            cfg.checkpoint_rebase_interval = u32::MAX;
        });
        let label = format!("incremental-long-chain seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        assert!(
            report.checkpoint_stats.delta_snapshots > 0,
            "{label}: sweep never exercised the delta path"
        );
        assert_eq!(
            report.checkpoint_stats.rebases, 0,
            "{label}: rebase fired despite an unreachable interval"
        );
        assert_exactly_once(&report, &label);
        assert_matches_reference(&report, &reference, &label);
    }
}

/// Tiered-state-backend sweep: the same chaos scenarios with every task's
/// value state behind the log-structured backend (DESIGN.md §10) under a
/// deliberately tiny resident budget, so eviction, segment faults, per-
/// barrier L0 seals and segment-based checkpoint reconstruction are all on
/// the recovery path. Output must still be a byte-identical per-key prefix
/// of the (untiered) failure-free reference — the backend is an engine-
/// internal representation change, never a semantic one.
#[test]
fn chaos_sweep_tiered_backend_exactly_once() {
    let reference = oracle_reference();
    let space = oracle_space();
    let mut faults_total = 0u64;
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle_with(clonos_full(), seed, Some(&plan), |cfg| {
            // The floor budget: each oracle stage holds ~24 keys × ~46 bytes
            // (~1.1 KiB) of value state, so 1 KiB keeps every task under
            // genuine eviction pressure.
            cfg.state_memory_budget = 1024;
        });
        let label = format!("tiered seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        let b = &report.state_backend_stats;
        assert!(b.tiered_tasks > 0, "{label}: backend never enabled");
        assert!(b.flushes > 0, "{label}: no memtable ever sealed");
        assert!(b.evictions > 0, "{label}: budget never forced an eviction");
        assert!(
            b.tier_io_us > 0,
            "{label}: tier I/O was never charged to the service queue"
        );
        faults_total += b.faults;
        assert_exactly_once(&report, &label);
        assert_matches_reference(&report, &reference, &label);
    }
    assert!(
        faults_total > 0,
        "tiered sweep never faulted a row back from a segment — the budget \
         is not exercising the read path"
    );
}

/// Unaligned-checkpoint sweep: same seeds, same chaos scenarios (which now
/// include sustained slow-task injections paired with barrier-aligned
/// kills), but with `CheckpointMode::Unaligned` — barriers jump queues and
/// overtaken records ride inside checkpoint images. Output must still be a
/// byte-identical per-key prefix of the failure-free reference.
fn sweep_unaligned(ft: impl Fn() -> FtMode, mode: &str, reference: &OracleReference) {
    let space = oracle_space();
    let mut overtaken_total = 0u64;
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle_with(ft(), seed, Some(&plan), |cfg| {
            cfg.checkpoint_mode = CheckpointMode::Unaligned;
        });
        let label = format!("{mode}-unaligned seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        assert_eq!(
            report.checkpoint_stats.alignment_stall_us, 0,
            "{label}: unaligned run recorded alignment stalls"
        );
        overtaken_total += report.checkpoint_stats.overtaken_records;
        assert_exactly_once(&report, &label);
        assert_matches_reference(&report, reference, &label);
    }
    assert!(
        overtaken_total > 0,
        "{mode}: no seed ever captured an overtaken record — the sweep is not \
         exercising the unaligned path"
    );
}

#[test]
fn chaos_sweep_unaligned_clonos_exactly_once() {
    let reference = oracle_reference();
    sweep_unaligned(clonos_full, "clonos", &reference);
}

#[test]
fn chaos_sweep_unaligned_global_rollback_exactly_once() {
    let reference = oracle_reference();
    sweep_unaligned(|| FtMode::GlobalRollback, "global-rollback", &reference);
}

/// Kills timed against an unaligned capture built over a deep backlog.
/// Checkpoint ticks fire at 5 s, 10 s, ...; barriers leave sources ~100 µs
/// later and jump queues, so with task 3 ("a" stage) throttled 150× from
/// 8 s, the 10 s checkpoint captures a multi-hundred-record backlog.
///
/// Scenario "mid-capture": the victim dies right at barrier flight time —
/// before/while its capture for checkpoint 2 is open and unacked. The
/// checkpoint must not complete with a hole; recovery resumes from the last
/// completed checkpoint and the replayed (or orphan-flushed)
/// TriggerCheckpoint determinant re-takes the snapshot.
///
/// Scenario "after-capture": the victim dies once checkpoint 2 (whose image
/// carries the captured backlog) has completed. Recovery restores that
/// image and must re-inject every captured record ahead of channel replay.
///
/// Both must leave sink content a byte-identical per-key prefix of the
/// failure-free reference.
#[test]
fn unaligned_kill_mid_capture_recovers_exactly_once() {
    let reference = oracle_reference();
    for (mode, ft) in [("clonos", clonos_full()), ("global-rollback", FtMode::GlobalRollback)] {
        for (phase, kill_at) in [("mid-capture", 10_000_150), ("after-capture", 10_200_000)] {
            let plan = FailurePlan::none()
                .slow_at(VirtualTime(8_000_000), 3, 150, VirtualDuration::from_secs(4))
                .kill_at(VirtualTime(kill_at), 3);
            let report = run_oracle_plan(ft.clone(), 7, plan, |cfg| {
                cfg.checkpoint_mode = CheckpointMode::Unaligned;
            });
            let label = format!("kill-{phase} {mode}");
            assert!(report.records_out > 0, "{label}: no committed output");
            assert!(
                report.checkpoint_stats.overtaken_records > 0,
                "{label}: the backlog never produced an overtaken capture"
            );
            if phase == "after-capture" {
                assert!(
                    report.checkpoint_stats.unaligned_reinjections > 0,
                    "{label}: recovery never re-injected captured records"
                );
            }
            assert_exactly_once(&report, &label);
            assert_matches_reference(&report, &reference, &label);
        }
    }
}

#[test]
fn chaos_sweep_at_least_once_orphan_never_loses() {
    // The documented availability-over-consistency configuration (§5.4):
    // orphaned tasks continue at-least-once, so duplicates are permitted —
    // but records must never be lost, under any chaos scenario.
    let space = oracle_space();
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle(at_least_once_orphan(), seed, Some(&plan));
        let label = format!("at-least-once-orphan seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        let gaps = report.ident_gaps();
        assert!(gaps.is_empty(), "{label}: lost records: {gaps:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Bit-level determinism: the same seed must produce the same run, down
    /// to every timeline event, every committed sink byte, and every
    /// robustness counter — the property that makes chaos failures
    /// reproducible from the seed alone. (`wall_seconds` is host time and
    /// deliberately excluded.)
    #[test]
    fn same_seed_same_run(seed in 0u64..1_000) {
        let plan = ChaosPlan::generate(seed, &oracle_space());
        let a = run_oracle(clonos_full(), seed, Some(&plan));
        let b = run_oracle(clonos_full(), seed, Some(&plan));
        let timeline = |r: &clonos_engine::RunReport| -> Vec<String> {
            r.events.iter().map(|e| format!("{:?} {}", e.at, e.what)).collect()
        };
        let sink = |r: &clonos_engine::RunReport| -> Vec<(u64, u64, bytes::Bytes)> {
            r.sink_output.iter().map(|(t, m, rec)| (*t, m.ident, rec.row.to_bytes())).collect()
        };
        prop_assert_eq!(timeline(&a), timeline(&b), "event timelines diverge");
        prop_assert_eq!(sink(&a), sink(&b), "sink output diverges");
        prop_assert_eq!(a.records_in, b.records_in);
        prop_assert_eq!(a.records_out, b.records_out);
        prop_assert_eq!(a.recovery_stats, b.recovery_stats, "robustness counters diverge");
        prop_assert_eq!(a.checkpoint_stats, b.checkpoint_stats, "checkpoint counters diverge");
        prop_assert_eq!(a.last_completed_checkpoint, b.last_completed_checkpoint);
    }
}
/// A transactional sink killed in the window between its checkpoint ack and
/// the JM's completion notification (chaos seed 39 originally found this).
/// The checkpoint completes — every ack arrived — so recovery restores from
/// it; but the sink's buffered transaction for the sealed epoch used to live
/// only in task memory, and the restored incarnation resumes *after* the
/// cut, so nothing ever re-wrote those records: a permanent mid-sequence
/// hole. The two-phase-commit pre-commit (write the sealed epoch's records
/// at the snapshot cut, abort markers roll back incomplete transactions)
/// must close the window in both barrier modes. Unaligned checkpoints widen
/// the window enormously — under backpressure the fast ack can precede the
/// aligned-equivalent ack by whole seconds — which is why the unaligned
/// sweep was the first to catch it.
#[test]
fn sink_killed_between_ack_and_commit_loses_nothing() {
    let reference = oracle_reference();
    // Barriers leave the JM at 10 s and reach the sinks ~200 us later; the
    // completion notification lands ~2 ms after that. Kill sink task 8 at
    // 10.001 s: after its ack, before the commit notification.
    for mode in [CheckpointMode::Aligned, CheckpointMode::Unaligned] {
        let plan = FailurePlan::none().kill_at(VirtualTime(10_001_000), 8);
        let report = run_oracle_plan(FtMode::GlobalRollback, 11, plan, |cfg| {
            cfg.checkpoint_mode = mode;
        });
        let label = format!("ack-window kill ({mode:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        assert!(
            report.last_completed_checkpoint >= 2,
            "{label}: checkpoint 2 never completed — the kill missed the \
             ack-to-notification window and the scenario lost its teeth"
        );
        assert_exactly_once(&report, &label);
        assert_matches_reference(&report, &reference, &label);
    }
}
