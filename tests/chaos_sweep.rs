//! Seeded chaos sweep: randomized multi-fault scenarios (task kills, node
//! crashes, interrupted standby transfers, lossy/laggy recovery control
//! plane, jittered detection) replayed against the exactly-once oracle.
//!
//! Every scenario is a pure function of its seed, so any divergence this
//! sweep finds reproduces with `CHAOS_SEEDS=<n>` (or by pinning the seed in
//! a one-off test). The in-tree default keeps debug-mode test time modest;
//! `scripts/chaos.sh` drives the full ≥100-seed sweep in release mode.

use clonos_engine::FtMode;
use clonos_integration::{
    assert_exactly_once, assert_matches_reference, at_least_once_orphan, clonos_full,
    oracle_reference, oracle_space, run_oracle, run_oracle_with, OracleReference,
};
use clonos_sim::chaos::ChaosPlan;
use proptest::prelude::*;

fn sweep_seeds() -> u64 {
    std::env::var("CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(6)
}

/// Exactly-once modes: no duplicate idents, no lost records, and the sink
/// content is a byte-identical per-key prefix of the failure-free reference.
fn sweep_exactly_once(ft: impl Fn() -> FtMode, mode: &str, reference: &OracleReference) {
    let space = oracle_space();
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle(ft(), seed, Some(&plan));
        let label = format!("{mode} seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        assert_exactly_once(&report, &label);
        assert_matches_reference(&report, reference, &label);
    }
}

#[test]
fn chaos_sweep_clonos_exactly_once() {
    let reference = oracle_reference();
    sweep_exactly_once(clonos_full, "clonos", &reference);
}

#[test]
fn chaos_sweep_global_rollback_exactly_once() {
    let reference = oracle_reference();
    sweep_exactly_once(|| FtMode::GlobalRollback, "global-rollback", &reference);
}

#[test]
fn chaos_sweep_incremental_long_chains_exactly_once() {
    // Incremental checkpoints with the rebase interval pushed past the run
    // horizon: every checkpoint after a task's first is a delta, so restores
    // and standby activations always reconstruct from the longest possible
    // chain. Chaos (kills, node crashes, interrupted transfers) must still
    // leave output byte-identical to the failure-free reference.
    let reference = oracle_reference();
    let space = oracle_space();
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle_with(clonos_full(), seed, Some(&plan), |cfg| {
            cfg.incremental_checkpoints = true;
            cfg.checkpoint_rebase_interval = u32::MAX;
        });
        let label = format!("incremental-long-chain seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        assert!(
            report.checkpoint_stats.delta_snapshots > 0,
            "{label}: sweep never exercised the delta path"
        );
        assert_eq!(
            report.checkpoint_stats.rebases, 0,
            "{label}: rebase fired despite an unreachable interval"
        );
        assert_exactly_once(&report, &label);
        assert_matches_reference(&report, &reference, &label);
    }
}

#[test]
fn chaos_sweep_at_least_once_orphan_never_loses() {
    // The documented availability-over-consistency configuration (§5.4):
    // orphaned tasks continue at-least-once, so duplicates are permitted —
    // but records must never be lost, under any chaos scenario.
    let space = oracle_space();
    for seed in 0..sweep_seeds() {
        let plan = ChaosPlan::generate(seed, &space);
        let report = run_oracle(at_least_once_orphan(), seed, Some(&plan));
        let label = format!("at-least-once-orphan seed {seed} ({plan:?})");
        assert!(report.records_out > 0, "{label}: no committed output");
        let gaps = report.ident_gaps();
        assert!(gaps.is_empty(), "{label}: lost records: {gaps:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Bit-level determinism: the same seed must produce the same run, down
    /// to every timeline event, every committed sink byte, and every
    /// robustness counter — the property that makes chaos failures
    /// reproducible from the seed alone. (`wall_seconds` is host time and
    /// deliberately excluded.)
    #[test]
    fn same_seed_same_run(seed in 0u64..1_000) {
        let plan = ChaosPlan::generate(seed, &oracle_space());
        let a = run_oracle(clonos_full(), seed, Some(&plan));
        let b = run_oracle(clonos_full(), seed, Some(&plan));
        let timeline = |r: &clonos_engine::RunReport| -> Vec<String> {
            r.events.iter().map(|e| format!("{:?} {}", e.at, e.what)).collect()
        };
        let sink = |r: &clonos_engine::RunReport| -> Vec<(u64, u64, bytes::Bytes)> {
            r.sink_output.iter().map(|(t, m, rec)| (*t, m.ident, rec.row.to_bytes())).collect()
        };
        prop_assert_eq!(timeline(&a), timeline(&b), "event timelines diverge");
        prop_assert_eq!(sink(&a), sink(&b), "sink output diverges");
        prop_assert_eq!(a.records_in, b.records_in);
        prop_assert_eq!(a.records_out, b.records_out);
        prop_assert_eq!(a.recovery_stats, b.recovery_stats, "robustness counters diverge");
        prop_assert_eq!(a.checkpoint_stats, b.checkpoint_stats, "checkpoint counters diverge");
        prop_assert_eq!(a.last_completed_checkpoint, b.last_completed_checkpoint);
    }
}
