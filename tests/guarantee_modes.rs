//! §5.4's guarantee spectrum on a Nexmark query, verified relative to the
//! failure-free output of the same seed:
//!   exactly-once  → output multiset equals the clean run,
//!   at-least-once → superset (duplicates allowed, no loss),
//!   at-most-once  → subset (loss allowed, no duplicates),
//!   baseline      → equals the clean run (transactional sinks).

use clonos::config::ClonosConfig;
use clonos_engine::FtMode;
use clonos_integration::{clonos_full, run_nexmark};
use clonos_nexmark::QueryId;
use std::collections::BTreeMap;

/// Multiset of output rows, as canonical bytes → count.
fn multiset(r: &clonos_engine::RunReport) -> BTreeMap<bytes::Bytes, u64> {
    let mut m = BTreeMap::new();
    for b in r.output_multiset() {
        *m.entry(b).or_insert(0) += 1;
    }
    m
}

fn is_subset(a: &BTreeMap<bytes::Bytes, u64>, b: &BTreeMap<bytes::Bytes, u64>) -> bool {
    a.iter().all(|(k, &n)| b.get(k).copied().unwrap_or(0) >= n)
}

const Q: QueryId = QueryId::Q1; // deterministic operator → clean comparisons
const KILL: (u64, u64) = (7_000_000, 3); // the first map instance
const SEED: u64 = 17;
const EVENTS: usize = 120_000;

fn clean() -> BTreeMap<bytes::Bytes, u64> {
    multiset(&run_nexmark(Q, clonos_full(), SEED, 2, EVENTS, &[], 30))
}

#[test]
fn exactly_once_equals_clean_run() {
    let failed = run_nexmark(Q, clonos_full(), SEED, 2, EVENTS, &[KILL], 30);
    assert_eq!(multiset(&failed), clean());
}

#[test]
fn baseline_equals_clean_run() {
    let failed = run_nexmark(Q, FtMode::GlobalRollback, SEED, 2, EVENTS, &[KILL], 60);
    assert_eq!(multiset(&failed), clean());
}

#[test]
fn at_least_once_is_a_superset_with_duplicates() {
    let failed = run_nexmark(
        Q,
        FtMode::Clonos(ClonosConfig::at_least_once()),
        SEED,
        2,
        EVENTS,
        &[KILL],
        30,
    );
    let m = multiset(&failed);
    let c = clean();
    assert!(is_subset(&c, &m), "at-least-once lost records");
    let extra: u64 = m.values().sum::<u64>() - c.values().sum::<u64>();
    assert!(extra > 0, "expected duplicated records from divergent replay");
}

#[test]
fn at_most_once_is_a_subset_with_losses() {
    let failed = run_nexmark(
        Q,
        FtMode::Clonos(ClonosConfig::at_most_once()),
        SEED,
        2,
        EVENTS,
        &[KILL],
        30,
    );
    let m = multiset(&failed);
    let c = clean();
    assert!(is_subset(&m, &c), "at-most-once duplicated records");
    let missing: u64 = c.values().sum::<u64>() - m.values().sum::<u64>();
    assert!(missing > 0, "expected losses from gap recovery");
}

#[test]
fn guarantee_ordering_no_failure_all_modes_agree() {
    // Without failures, all four modes produce the same output multiset.
    let c = clean();
    for ft in [
        FtMode::Clonos(ClonosConfig::at_most_once()),
        FtMode::Clonos(ClonosConfig::at_least_once()),
        FtMode::GlobalRollback,
    ] {
        let r = run_nexmark(Q, ft, SEED, 2, EVENTS, &[], 60);
        assert_eq!(multiset(&r), c);
    }
}
