//! Multiple/concurrent failures and determinant-sharing-depth behaviour
//! (§5.3/§7.4): the Figure-4 case analysis, exercised end-to-end.

use clonos::config::ClonosConfig;
use clonos_engine::operator::OpCtx;
use clonos_engine::operators::ProcessOp;
use clonos_engine::*;
use clonos_integration::{assert_exactly_once, clonos_dsd, clonos_full};
use clonos_sim::{VirtualDuration, VirtualTime};

/// Depth-4 chain (source → a → b → sink) with nondeterministic stages.
fn chain(parallelism: usize) -> JobGraph {
    let mut g = JobGraph::new("chain");
    let src = g.add_source("src", parallelism, SourceSpec::new("in").rate(4_000).key_field(0));
    let stage = || {
        factory(|| {
            ProcessOp::new(|_i, rec: &Record, ctx: &mut OpCtx<'_>| {
                let c = ctx.state.value(0, rec.key).map(|r| r.int(0)).unwrap_or(0) + 1;
                ctx.state.set_value(0, rec.key, Row::new(vec![Datum::Int(c)]));
                let _ts = ctx.timestamp()?;
                ctx.emit(rec.key, rec.event_time, rec.row.clone());
                Ok(())
            })
        })
    };
    let a = g.add_operator("a", parallelism, stage());
    let b = g.add_operator("b", parallelism, stage());
    let snk = g.add_sink("sink", parallelism, SinkSpec { topic: "out".into() });
    g.connect(src, a, Partitioning::Hash);
    g.connect(a, b, Partitioning::Hash);
    g.connect(b, snk, Partitioning::Hash);
    g
}

fn run(
    parallelism: usize,
    ft: FtMode,
    seed: u64,
    kills: &[(u64, u64)],
    secs: u64,
) -> RunReport {
    let cfg = EngineConfig::default().with_seed(seed).with_ft(ft);
    let mut runner = JobRunner::new(chain(parallelism), cfg);
    let n = 4_000 * parallelism as i64 * (secs as i64 - 8);
    let rows: Vec<Row> =
        (0..n).map(|i| Row::new(vec![Datum::Int(i % 64), Datum::Int(i)])).collect();
    for p in 0..parallelism {
        let slice: Vec<Row> = rows.iter().skip(p).step_by(parallelism).cloned().collect();
        runner.populate("in", p, slice);
    }
    let mut plan = FailurePlan::none();
    for &(at, t) in kills {
        plan = plan.kill_at(VirtualTime(at), t);
    }
    runner.with_failures(plan).run_for(VirtualDuration::from_secs(secs))
}

#[test]
fn three_staggered_failures_full_dsd() {
    // p=2 chain: src 1-2, a 3-4, b 5-6, sink 7-8. Connected kills 5 s apart.
    let report = run(
        2,
        clonos_full(),
        3,
        &[(7_000_000, 3), (12_000_000, 5), (17_000_000, 7)],
        40,
    );
    assert!(!report.events.iter().any(|e| e.what.contains("global rollback")));
    assert_exactly_once(&report, "staggered");
}

#[test]
fn three_concurrent_connected_failures_full_dsd() {
    let report = run(
        2,
        clonos_full(),
        5,
        &[(7_000_000, 3), (7_000_000, 5), (7_000_000, 7)],
        40,
    );
    assert!(
        !report.events.iter().any(|e| e.what.contains("global rollback")),
        "full DSD must recover locally: {:?}",
        report.events
    );
    assert_exactly_once(&report, "concurrent");
}

#[test]
fn dsd2_tolerates_two_consecutive_failures() {
    let report = run(2, clonos_dsd(2), 7, &[(7_000_000, 3), (7_000_000, 5)], 40);
    assert!(!report.events.iter().any(|e| e.what.contains("global rollback")));
    assert_exactly_once(&report, "dsd2/2-consecutive");
}

#[test]
fn dsd1_with_two_consecutive_failures_rolls_back_but_stays_consistent() {
    let report = run(2, clonos_dsd(1), 9, &[(7_000_000, 3), (7_000_000, 5)], 60);
    assert!(
        report.events.iter().any(|e| e.what.contains("falling back to global rollback")
            || e.what.contains("escalating to global rollback")),
        "expected the Figure-4 orphan fallback (static or runtime-escalated): {:?}",
        report.events
    );
    assert_exactly_once(&report, "dsd1 fallback");
}

#[test]
fn prefer_availability_continues_at_least_once() {
    let mut cfg = ClonosConfig::exactly_once(clonos::config::SharingDepth::Depth(1));
    cfg.prefer_availability_on_orphans = true;
    let report = run(
        2,
        FtMode::Clonos(cfg),
        11,
        &[(7_000_000, 3), (7_000_000, 5)],
        40,
    );
    // §5.4: availability wins — no global rollback even though orphaned.
    assert!(report
        .events
        .iter()
        .any(|e| e.what.contains("continuing at-least-once")));
    assert!(!report.events.iter().any(|e| e.what.contains("global rollback: restarting")));
    // No losses; duplicates possible.
    assert!(report.ident_gaps().is_empty());
}

#[test]
fn unconnected_parallel_failures_recover_independently() {
    // Kill one instance of stage a and one of stage b on *different* key
    // paths simultaneously; DSD=1 suffices (no consecutive pair dies).
    let report = run(2, clonos_dsd(1), 13, &[(7_000_000, 3), (7_000_000, 6)], 40);
    assert!(
        !report.events.iter().any(|e| e.what.contains("global rollback")),
        "unconnected failures must not orphan anyone: {:?}",
        report.events
    );
    assert_exactly_once(&report, "unconnected");
}

#[test]
fn five_sequential_failures_over_a_long_run() {
    let kills: Vec<(u64, u64)> = vec![
        (7_000_000, 3),
        (14_000_000, 5),
        (21_000_000, 4),
        (28_000_000, 6),
        (35_000_000, 3),
    ];
    let report = run(2, clonos_full(), 15, &kills, 60);
    assert_exactly_once(&report, "five failures");
    assert!(report.records_out > 0);
}

#[test]
fn cold_recovery_without_standby_tasks_is_slower_but_exact() {
    // Disable standbys: recovery loads state from the snapshot store.
    let mut cfg = ClonosConfig::exactly_once(clonos::config::SharingDepth::Full);
    cfg.standby_tasks = false;
    let with_standby = run(2, clonos_full(), 21, &[(12_000_000, 3)], 40);
    let cold = run(2, FtMode::Clonos(cfg), 21, &[(12_000_000, 3)], 40);
    assert_exactly_once(&with_standby, "standby");
    assert_exactly_once(&cold, "cold");
    // Both recover; the standby path must not be slower than cold.
    let t_standby = with_standby.recovery_time(1.25).map(|d| d.as_micros()).unwrap_or(0);
    let t_cold = cold.recovery_time(1.25).map(|d| d.as_micros()).unwrap_or(0);
    assert!(
        t_standby <= t_cold.max(1),
        "standby recovery ({t_standby}us) slower than cold ({t_cold}us)"
    );
}

#[test]
fn failure_before_first_checkpoint_replays_from_job_start() {
    // Kill before checkpoint 1 completes: resume_cp = 0, state = fresh,
    // replay covers the whole history from the sources.
    let report = run(2, clonos_full(), 31, &[(2_000_000, 5)], 40);
    assert_exactly_once(&report, "pre-first-checkpoint");
    assert!(report.events.iter().any(|e| e.what.contains("replay complete")));
}

#[test]
fn longer_checkpoint_interval_means_longer_replay_but_same_guarantee() {
    for interval_s in [2u64, 10] {
        let cfg = EngineConfig::default()
            .with_seed(37)
            .with_ft(clonos_full());
        let mut cfg = cfg;
        cfg.checkpoint_interval = VirtualDuration::from_secs(interval_s);
        let mut runner = JobRunner::new(chain(2), cfg);
        let n = 4_000 * 2 * 32;
        let rows: Vec<Row> =
            (0..n).map(|i| Row::new(vec![Datum::Int(i % 64), Datum::Int(i)])).collect();
        for p in 0..2 {
            let slice: Vec<Row> = rows.iter().skip(p).step_by(2).cloned().collect();
            runner.populate("in", p, slice);
        }
        let report = runner
            .with_failures(FailurePlan::none().kill_at(VirtualTime(15_000_000), 3))
            .run_for(VirtualDuration::from_secs(40));
        assert_exactly_once(&report, &format!("cp interval {interval_s}s"));
    }
}
