//! Property-based tests of the recovery machinery across randomized
//! topologies, failure sets, and failure timings.

use clonos::config::{ClonosConfig, SharingDepth};
use clonos::recovery::{analyze_failure, RecoveryDecision, TopologyInfo};
use clonos_engine::FtMode;
use clonos_integration::{assert_exactly_once, run_nexmark};
use clonos_nexmark::QueryId;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Random layered DAG: `widths[i]` tasks per layer, every task connected to
/// 1..=all tasks of the next layer.
fn arb_topology() -> impl Strategy<Value = (TopologyInfo, Vec<u64>)> {
    (2usize..5, 1usize..4).prop_flat_map(|(layers, width)| {
        let widths: Vec<usize> = vec![width; layers];
        let n: u64 = widths.iter().map(|&w| w as u64).sum();
        proptest::collection::vec(any::<u64>(), (n as usize).min(64)).prop_map(move |edges_seed| {
            let mut topo = TopologyInfo::new();
            let mut ids: Vec<Vec<u64>> = Vec::new();
            let mut next = 1u64;
            for &w in &widths {
                let layer: Vec<u64> = (0..w).map(|_| {
                    let id = next;
                    next += 1;
                    topo.add_task(id);
                    id
                })
                .collect();
                ids.push(layer);
            }
            for li in 0..ids.len() - 1 {
                for (i, &u) in ids[li].iter().enumerate() {
                    for (j, &d) in ids[li + 1].iter().enumerate() {
                        // Deterministic pseudo-random connectivity; always at
                        // least one edge per upstream task.
                        let h = edges_seed
                            .get((i * 7 + j * 13) % edges_seed.len())
                            .copied()
                            .unwrap_or(0);
                        if j == i % ids[li + 1].len() || h % 3 == 0 {
                            topo.add_edge(u, d);
                        }
                    }
                }
            }
            let all: Vec<u64> = topo.tasks().collect();
            (topo, all)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Figure 4, case 1: with DSD = graph depth, no failure set ever forces
    /// a global rollback.
    #[test]
    fn full_dsd_never_rolls_back((topo, all) in arb_topology(), mask in any::<u64>()) {
        let failed: BTreeSet<u64> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
            .map(|(_, &t)| t)
            .collect();
        prop_assume!(!failed.is_empty());
        let depth = topo.depth();
        let decision = analyze_failure(&topo, &failed, depth.max(1));
        prop_assert!(
            matches!(decision, RecoveryDecision::Local { .. }),
            "rolled back under full DSD: {decision:?}"
        );
    }

    /// Holders returned by the analysis are always alive, downstream of the
    /// failed task, and within DSD hops.
    #[test]
    fn holders_are_alive_and_in_range((topo, all) in arb_topology(), mask in any::<u64>(), dsd in 1u32..4) {
        let failed: BTreeSet<u64> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
            .map(|(_, &t)| t)
            .collect();
        prop_assume!(!failed.is_empty());
        if let RecoveryDecision::Local { with_determinants, .. } =
            analyze_failure(&topo, &failed, dsd)
        {
            for (f, holders) in with_determinants {
                let cone = topo.downstream_cone(f);
                for h in holders {
                    prop_assert!(!failed.contains(&h), "holder {h} is dead");
                    let hops = cone.get(&h).copied().unwrap_or(u32::MAX);
                    prop_assert!(hops <= dsd, "holder {h} at {hops} hops > dsd {dsd}");
                }
            }
        }
    }

    /// Free recovery is only declared when no survivor depends on the task.
    #[test]
    fn free_tasks_have_no_surviving_dependents((topo, all) in arb_topology(), mask in any::<u64>()) {
        let failed: BTreeSet<u64> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> (i % 64) & 1 == 1)
            .map(|(_, &t)| t)
            .collect();
        prop_assume!(!failed.is_empty());
        if let RecoveryDecision::Local { free, .. } = analyze_failure(&topo, &failed, 1) {
            for f in free {
                let survivors: Vec<u64> = topo
                    .downstream_cone(f)
                    .keys()
                    .copied()
                    .filter(|t| !failed.contains(t))
                    .collect();
                prop_assert!(
                    survivors.is_empty(),
                    "task {f} declared free but {survivors:?} depend on it"
                );
            }
        }
    }
}

/// Randomized kill times on a real pipeline: whatever the instant (before,
/// during, or between checkpoints), Clonos exactly-once holds. Expensive, so
/// few cases.
#[test]
fn random_kill_times_keep_exactly_once() {
    for (i, kill_ms) in [1_500u64, 4_900, 5_100, 9_800, 12_345, 15_000].iter().enumerate() {
        let report = run_nexmark(
            QueryId::Q13, // nondeterministic external calls
            FtMode::Clonos(ClonosConfig::exactly_once(SharingDepth::Full)),
            100 + i as u64,
            2,
            120_000,
            &[(kill_ms * 1_000, 3)],
            30,
        );
        assert_exactly_once(&report, &format!("kill at {kill_ms}ms"));
    }
}
