//! End-to-end exactly-once verification on the Nexmark suite.
//!
//! For every query the paper evaluates (Q1–Q9, Q11–Q14): run with a failure
//! injected into a mid-pipeline operator under Clonos exactly-once, and
//! verify (a) no duplicate idents, (b) no lost records, (c) local recovery
//! actually ran (no global rollback), and (d) for the deterministic
//! event-time queries, the effective output multiset equals a failure-free
//! run of the same seed.

use clonos_integration::{assert_exactly_once, clonos_full, run_nexmark};
use clonos_nexmark::{QueryId, ALL_QUERIES};

/// Task id of the first non-source operator instance for a query built at
/// parallelism `p`: sources occupy the first `num_sources * p` ids (starting
/// at 1).
fn first_operator_task(q: QueryId, p: u64) -> u64 {
    let sources = match q {
        QueryId::Q3 | QueryId::Q4 | QueryId::Q6 | QueryId::Q8 | QueryId::Q9 => 2,
        _ => 1,
    };
    1 + sources * p
}

/// The queries whose output is a deterministic function of the input
/// (event-time only, no external calls / RNG / processing time).
fn is_deterministic(q: QueryId) -> bool {
    !matches!(q, QueryId::Q12 | QueryId::Q13 | QueryId::Q14)
}

#[test]
fn every_query_survives_an_operator_failure_exactly_once() {
    for q in ALL_QUERIES {
        let p = 2;
        let victim = first_operator_task(q, p as u64);
        let report =
            run_nexmark(q, clonos_full(), 7, p, 60_000, &[(7_000_000, victim)], 30);
        assert!(
            report.events.iter().any(|e| e.what.contains("replay complete")),
            "{q}: recovery did not complete: {:?}",
            report.events
        );
        assert!(
            !report.events.iter().any(|e| e.what.contains("global rollback")),
            "{q}: unexpected global rollback"
        );
        assert_exactly_once(&report, &q.to_string());
        assert!(report.records_out > 0, "{q}: produced no output");
    }
}

#[test]
fn deterministic_queries_match_failure_free_golden_run() {
    for q in ALL_QUERIES.into_iter().filter(|&q| is_deterministic(q)) {
        let p = 2;
        let victim = first_operator_task(q, p as u64);
        let clean = run_nexmark(q, clonos_full(), 11, p, 40_000, &[], 30);
        let failed = run_nexmark(q, clonos_full(), 11, p, 40_000, &[(7_000_000, victim)], 30);
        assert_eq!(
            clean.output_multiset(),
            failed.output_multiset(),
            "{q}: failure changed the observable output"
        );
    }
}

#[test]
fn nondeterministic_queries_stay_unique_and_gap_free() {
    for q in [QueryId::Q12, QueryId::Q13, QueryId::Q14] {
        let p = 2;
        let victim = first_operator_task(q, p as u64);
        for seed in [3, 9] {
            let report =
                run_nexmark(q, clonos_full(), seed, p, 40_000, &[(7_000_000, victim)], 30);
            assert_exactly_once(&report, &format!("{q} seed {seed}"));
        }
    }
}

#[test]
fn sink_failures_on_windowed_query() {
    // Q11's sink tasks are the last two ids; kill one.
    let q = QueryId::Q11;
    let report = run_nexmark(q, clonos_full(), 5, 2, 40_000, &[(7_000_000, 5)], 30);
    assert_exactly_once(&report, "Q11 sink kill");
}

#[test]
fn source_failures_replay_from_durable_topic() {
    let q = QueryId::Q1;
    let report = run_nexmark(q, clonos_full(), 5, 2, 60_000, &[(7_000_000, 1)], 30);
    assert_exactly_once(&report, "Q1 source kill");
    let clean = run_nexmark(q, clonos_full(), 5, 2, 60_000, &[], 30);
    assert_eq!(clean.output_multiset(), report.output_multiset());
}

#[test]
fn aggregation_tree_second_stage_failure() {
    // Q7's global-max operator sits two stages deep (the aggregation tree
    // for skewed keys); kill it rather than the first stage. Layout at p=2:
    // bids 1-2, partial-max 3-4, global-max 5 (parallelism 1), sink 6.
    let report = run_nexmark(QueryId::Q7, clonos_full(), 23, 2, 60_000, &[(7_000_000, 5)], 30);
    assert!(report.events.iter().any(|e| e.what.contains("replay complete")));
    assert_exactly_once(&report, "Q7 global-max kill");
    let clean = run_nexmark(QueryId::Q7, clonos_full(), 23, 2, 60_000, &[], 30);
    assert_eq!(clean.output_multiset(), report.output_multiset());
}

#[test]
fn back_to_back_checkpoint_and_failure() {
    // Kill right at the checkpoint boundary (trigger fires every 5 s): the
    // victim may die mid-alignment; recovery must still be exact.
    for kill_us in [4_990_000u64, 5_010_000, 5_150_000] {
        let report =
            run_nexmark(QueryId::Q4, clonos_full(), 29, 2, 60_000, &[(kill_us, 5)], 30);
        assert_exactly_once(&report, &format!("Q4 kill at {kill_us}"));
    }
}
