//! Runtime trace conformance against the statically extracted causal spec
//! (DESIGN.md §11): every chaos run's `caused_by`-linked protocol trace
//! must stay inside the "sent-in-response-to" graph `clonos-lint` derives
//! from handler-arm send sites, and every chain the run starts must finish
//! or be excusable. Plus two fault-injection regressions proving the
//! checker and the watchdog *blame the right hop* when a chain stalls.

use clonos_integration::conformance::{
    assert_conformant, check_trace, StaticSpec, Tolerances,
};
use clonos_integration::{
    at_least_once_orphan, clonos_dsd, clonos_full, run_oracle, run_oracle_plan, run_oracle_with,
};
use clonos_engine::{FailurePlan, FtMode};
use clonos_sim::chaos::ChaosPlan;
use clonos_sim::VirtualTime;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn sweep_seeds() -> u64 {
    std::env::var("CHAOS_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(6)
}

/// The published/derived spec is non-trivial and carries the two chains the
/// recovery argument rests on (the barrier round-trip and failure-to-done).
#[test]
fn spec_has_the_core_protocol_chains() {
    let spec = StaticSpec::load(&workspace_root());
    assert!(!spec.entries.is_empty(), "spec has no protocol entries");
    assert!(spec.edges.len() >= 10, "suspiciously few response edges: {:?}", spec.edges);
    let chain = |name: &str| {
        spec.chains
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("spec lacks the {name} chain: {:?}", spec.chains))
            .1
            .clone()
    };
    let barrier = chain("barrier");
    assert_eq!(barrier.first().map(String::as_str), Some("TriggerCheckpoint"));
    assert_eq!(barrier.last().map(String::as_str), Some("CheckpointComplete"));
    let recovery = chain("recovery");
    assert_eq!(recovery.first().map(String::as_str), Some("FailureDetected"));
    assert_eq!(recovery.last().map(String::as_str), Some("RecoveryDone"));
}

/// Bounded chaos sweep (`CHAOS_SEEDS` widens it; `scripts/check.sh` runs 25,
/// `scripts/chaos.sh` ≥ 100): every FT mode's causal trace conforms to the
/// static spec under randomized kills, node crashes, and a lossy recovery
/// control plane.
#[test]
fn chaos_sweep_traces_conform_in_all_ft_modes() {
    let spec = StaticSpec::load(&workspace_root());
    let tol = Tolerances::oracle();
    let space = clonos_integration::oracle_space();
    // Every failure-handling mode (`FtMode::None` cannot take a kill by
    // design; its trace is covered by the failure-free test below).
    type Mode = (&'static str, fn() -> FtMode);
    let modes: &[Mode] = &[
        ("global-rollback", || FtMode::GlobalRollback),
        ("clonos-full", clonos_full),
        ("clonos-dsd1", || clonos_dsd(1)),
        ("at-least-once-orphan", at_least_once_orphan),
    ];
    for (mode, ft) in modes {
        for seed in 0..sweep_seeds() {
            let plan = ChaosPlan::generate(seed, &space);
            let report = run_oracle(ft(), seed, Some(&plan));
            assert_conformant(&report, &spec, &tol, &format!("{mode} seed {seed} ({plan:?})"));
        }
    }
}

/// A failure-free run's trace is conformant and actually exercises the
/// barrier chain (non-vacuous: triggers, acks, and completions all appear).
#[test]
fn failure_free_trace_is_conformant_and_nonempty() {
    let spec = StaticSpec::load(&workspace_root());
    let report = run_oracle(clonos_full(), 7, None);
    for kind in ["TriggerCheckpoint", "CheckpointAck", "CheckpointComplete"] {
        assert!(
            report.causal_events.iter().any(|e| e.kind == kind),
            "trace never recorded {kind}"
        );
    }
    assert_conformant(&report, &spec, &Tolerances::oracle(), "failure-free");
}

/// Injected liveness fault #1: task 5's ack for checkpoint 2 is dropped
/// before the trace boundary. The conformance checker must diagnose the
/// stalled barrier and blame exactly the missing `CheckpointAck` hop of
/// exactly task 5 — not merely notice "something didn't finish".
#[test]
fn dropped_ack_is_blamed_on_the_missing_hop() {
    let spec = StaticSpec::load(&workspace_root());
    let report = run_oracle_with(clonos_full(), 3, None, |cfg| {
        cfg.inject_ack_loss = Some((5, 2));
    });
    let violations = check_trace(&report, &spec, &Tolerances::oracle());
    assert!(!violations.is_empty(), "dropped ack went undiagnosed");
    let stalled: Vec<_> =
        violations.iter().filter(|v| v.what.contains("stalled barrier")).collect();
    assert!(!stalled.is_empty(), "no stalled-barrier violation: {violations:?}");
    let v = stalled
        .iter()
        .find(|v| v.what.contains("checkpoint 2"))
        .unwrap_or_else(|| panic!("checkpoint 2 not blamed: {stalled:?}"));
    assert!(
        v.blame.iter().any(|b| b.contains("missing CheckpointAck from task(s) [5]")),
        "wrong hop blamed: {:?}",
        v.blame
    );
    assert!(
        v.blame.iter().any(|b| b.contains("stalls at hop `CheckpointAck`")),
        "hop not named: {:?}",
        v.blame
    );
    // Every *other* checkpoint in the same run still conforms.
    assert!(
        violations.iter().all(|v| v.what.contains("checkpoint 2")),
        "healthy barriers misdiagnosed: {violations:?}"
    );
    assert_eq!(report.recovery_stats.ctrl_dropped, 1);
}

/// Injected liveness fault #2: a task dies and the recovery control plane
/// loses every message, so the determinant gather can never finish. The
/// recovery watchdog must escalate *and* name the stalled hop (the gather's
/// unanswered `LogRequest`) in both the event log and the new stats
/// counter, rather than only reporting an elapsed timeout.
#[test]
fn watchdog_escalation_names_the_stalled_gather_hop() {
    let report = run_oracle_plan(
        clonos_full(),
        11,
        FailurePlan::none().kill_at(VirtualTime(6_000_000), 3),
        |cfg| {
            cfg.ctrl_loss_prob = 1.0;
            // Keep retrying the gather forever: only the whole-recovery
            // watchdog may escalate, so the diagnosis is unambiguous.
            cfg.max_gather_retries = 100;
        },
    );
    let rs = &report.recovery_stats;
    assert!(rs.watchdog_escalations >= 1, "watchdog never escalated: {rs:?}");
    assert!(
        rs.stalled_gather_escalations >= 1,
        "stall not attributed to the gather phase: {rs:?}"
    );
    assert_eq!(rs.stalled_replay_escalations, 0, "misattributed to replay: {rs:?}");
    assert!(
        report
            .events
            .iter()
            .any(|e| e.what.contains("cause chain stalls after LogRequest(")),
        "escalation event does not name the stalled hop: {:?}",
        report.events.iter().map(|e| &e.what).collect::<Vec<_>>()
    );
}
