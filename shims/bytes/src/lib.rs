//! Offline drop-in subset of the `bytes` crate.
//!
//! The build environment is hermetic (no crates.io access), so the workspace
//! vendors the small slice of the `bytes` API it actually uses: [`Bytes`]
//! (cheaply cloneable, cheaply sliceable shared byte buffers), [`BytesMut`]
//! (append-only builder), and the [`BufMut`] write trait. Semantics follow
//! the real crate for this subset; anything not used by the workspace is
//! intentionally absent.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Clones and [`Bytes::slice`] are reference-count bumps plus offset
/// arithmetic — no copying. This is what makes arena-backed delta slicing
/// and no-copy in-flight logging cheap.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copies once into shared storage; the real crate
    /// borrows, but for this workspace's test-only uses a copy is fine).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s), off: 0, len: s.len() }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-slice sharing the same backing storage (no copy).
    ///
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of bounds (len {})", self.len);
        Bytes { data: Arc::clone(&self.data), off: self.off + start, len: end - start }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v), off: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Write interface used by encoders. Only the methods the workspace's codec
/// needs are present.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, s: &[u8]);
}

/// An append-only growable buffer that freezes into a [`Bytes`].
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Convert the written contents into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage_without_copy() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(Arc::strong_count(&b.data), 3);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u64_le(0x0102);
        m.put_slice(b"xyz");
        assert_eq!(m.len(), 12);
        let b = m.freeze();
        assert_eq!(b[0], 7);
        assert_eq!(&b[9..12], b"xyz");
    }

    #[test]
    fn equality_and_empty() {
        assert_eq!(Bytes::new(), Bytes::from(vec![]));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
    }
}
