//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment is hermetic (no crates.io access), so the workspace
//! vendors the slice of proptest it uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, `any::<T>()` for primitives, integer-range
//! strategies, tuple composition, `collection::vec`, `option::of`, the
//! `proptest!`/`prop_oneof!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for a hermetic test shim:
//! - **No shrinking.** A failing case reports its inputs via the assertion
//!   message and the deterministic per-test seed instead.
//! - **Deterministic by default.** Each `proptest!` test derives its RNG
//!   seed from the test's module path and name, so failures reproduce
//!   across runs. Set `PROPTEST_SEED=<u64>` to perturb the whole suite.

pub mod test_runner {
    pub use crate::{ProptestConfig, TestCaseError, TestRng};
}

/// Deterministic xorshift/SplitMix RNG used to generate test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        // SplitMix64 scramble so nearby seeds diverge immediately.
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Seed derived from a stable name (module path + test name) so each
    /// test gets an independent, reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng::from_seed(h ^ env)
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping (bias negligible for tests).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not a failure.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Subset of proptest's runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Consecutive `prop_assume!` rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// A generator of values of one type. Combinators consume `self` and are
/// `Sized`-gated so the trait stays object-safe for [`BoxedStrategy`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy (what `prop_oneof!` stores).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Values of a type with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: exercises NaN/inf/subnormal codec paths.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! strategy_for_range {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*
    };
}

strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

strategy_for_tuple!(A: 0);
strategy_for_tuple!(A: 0, B: 1);
strategy_for_tuple!(A: 0, B: 1, C: 2);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: an exact count or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `collection::vec(strategy, size)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match the real crate's default: None about 1 time in 4.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `option::of(strategy)` — `None` sometimes, `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    pub mod proptest_crate {
        pub use crate::*;
    }
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discard the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The property-test entry point. Each `fn name(pat in strategy, ...) {..}`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {passed}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1_000 {
            let v = crate::Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(v in crate::collection::vec(any::<u8>(), 0..8), flag in any::<bool>()) {
            prop_assume!(v.len() != 7);
            prop_assert!(v.len() < 8);
            let doubled: Vec<u16> = v.iter().map(|&b| b as u16 * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            let _ = flag;
        }

        #[test]
        fn oneof_and_maps(d in prop_oneof![
            (0u32..4).prop_map(|c| (c, 0u64)),
            (any::<u16>(), any::<u16>()).prop_map(|(a, b)| (a as u32, b as u64)),
        ]) {
            prop_assert!(d.0 < 65_536);
        }
    }
}
