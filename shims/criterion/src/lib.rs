//! Offline drop-in subset of the `criterion` benchmarking crate.
//!
//! The build environment is hermetic (no crates.io access), so the workspace
//! vendors the slice of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: a warm-up pass sizes the batch, then
//! `sample_size` timed batches produce a mean ns/iter (plus min/max), printed
//! in a `name ... time: [mean]` line. There is no statistical analysis, HTML
//! report, or baseline comparison — benches exist here to produce relative
//! numbers for `BENCH_*.json` artifacts and to keep `--all-targets` compiling.

// Host-time measurement is this shim's purpose (clippy.toml wall-clock
// disallow list exempts measurement code explicitly).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
const WARM_UP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Throughput annotation; recorded and echoed, not used for analysis.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a bench name: `&str` or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times it.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns/iter of the last `iter` call, for the caller to report.
    pub(crate) result_ns: f64,
    pub(crate) min_ns: f64,
    pub(crate) max_ns: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until WARM_UP elapses to stabilise caches/branch
        // predictors, and learn the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        self.result_ns = total_ns / self.sample_size as f64;
        self.min_ns = min_ns;
        self.max_ns = max_ns;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn run_bench(group: Option<&str>, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher { sample_size, result_ns: 0.0, min_ns: 0.0, max_ns: 0.0 };
    f(&mut b);
    println!(
        "{full:<48} time: [{} {} {}]",
        fmt_ns(b.min_ns),
        fmt_ns(b.result_ns),
        fmt_ns(b.max_ns),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(Some(&self.name), &id.into_id(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id.into_id(), self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Parse CLI args the way cargo-bench invokes harnesses (`--bench`,
    /// filters). This shim accepts and ignores them.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(None, &id.into_id(), self.sample_size, &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).into_id(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.5), "12.5000 ns");
        assert_eq!(fmt_ns(1_500.0), "1.5000 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.0000 ms");
    }
}
