#!/usr/bin/env bash
# Full chaos sweep: SEEDS randomized fault scenarios (task kills, node
# crashes, interrupted standby transfers, lossy recovery control plane)
# replayed under all three fault-tolerance modes against the exactly-once
# oracle, in release mode.
#
# Usage: [SEEDS=100] scripts/chaos.sh
#
# Every scenario is a pure function of its seed: a failure reported here
# reproduces with `CHAOS_SEEDS=<n> cargo test --release --test chaos_sweep`
# (the sweep runs seeds 0..n, so pass any n greater than the failing seed).
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-100}"

echo "== chaos sweep: ${SEEDS} seeds x 3 fault-tolerance modes =="
CHAOS_SEEDS="$SEEDS" cargo test --release -p clonos-integration --test chaos_sweep -- --nocapture

echo "== chaos sweep OK (${SEEDS} seeds) =="
