#!/usr/bin/env bash
# Repo gate: tier-1 build + tests, then the blocking static-analysis stage
# (clonos-lint + clippy disallow lists), then the chaos sweep.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== lint: clonos-lint + clippy (blocking) =="
lint_time_file=$(mktemp)
LINT_TIME_FILE="$lint_time_file" scripts/lint.sh
lint_ms=$(cat "$lint_time_file" 2>/dev/null || echo "")
rm -f "$lint_time_file"
if [[ -z "$lint_ms" ]]; then
  echo "ERROR: lint timing summary missing (expected a '... in N ms' stats line)" >&2
  exit 1
fi
if [[ "$lint_ms" -gt 2000 ]]; then
  echo "ERROR: clonos-lint analysis took ${lint_ms} ms (> 2000 ms budget) — the call-graph/lockgraph/causal passes regressed" >&2
  exit 1
fi
echo "== lint: analysis wall time ${lint_ms} ms (budget 2000 ms) =="

echo "== chaos: bounded seed sweep (25 seeds x 3 modes, release) =="
CHAOS_SEEDS=25 cargo test --release -q -p clonos-integration --test chaos_sweep

echo "== conformance: causal traces vs results/causal_spec.json (25 seeds x 4 FT modes, release) =="
CHAOS_SEEDS=25 cargo test --release -q -p clonos-integration --test causal_conformance

echo "== bench: checkpoint smoke (full-vs-delta barrier encoding) =="
BENCH_CHECKPOINT_SMOKE=1 cargo run --release -q -p clonos-bench --bin bench_checkpoint

echo "== bench: throughput smoke (sharded actor runtime vs sim scheduler) =="
BENCH_THROUGHPUT_SMOKE=1 cargo run --release -q -p clonos-bench --bin bench_throughput

echo "== bench: barrier smoke (aligned vs unaligned under backpressure) =="
BENCH_BARRIER_SMOKE=1 cargo run --release -q -p clonos-bench --bin bench_barrier

echo "== bench: state smoke (tiered backend, O(dirty) shipped bytes) =="
BENCH_STATE_SMOKE=1 cargo run --release -q -p clonos-bench --bin bench_state

echo "== OK =="
