#!/usr/bin/env bash
# Repo gate: tier-1 build + tests, then the blocking static-analysis stage
# (clonos-lint + clippy disallow lists), then the chaos sweep.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: test suite =="
cargo test -q

echo "== lint: clonos-lint + clippy (blocking) =="
scripts/lint.sh

echo "== chaos: bounded seed sweep (25 seeds x 3 modes, release) =="
CHAOS_SEEDS=25 cargo test --release -q -p clonos-integration --test chaos_sweep

echo "== bench: checkpoint smoke (full-vs-delta barrier encoding) =="
BENCH_CHECKPOINT_SMOKE=1 cargo run --release -q -p clonos-bench --bin bench_checkpoint

echo "== OK =="
