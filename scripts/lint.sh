#!/usr/bin/env bash
# Static-analysis gate: clonos-lint (determinism + recovery-path + protocol
# invariants + call-graph transitive analyses + the concurrency-soundness
# pass: lock-order / blocking-under-lock / guard-across-park) followed by a
# warning-free clippy pass with the clippy.toml disallow lists. Blocking:
# any violation exits non-zero.
#
# The clonos-lint stage prints a one-line timing summary (parsed from the
# tool's own stderr stats line); LINT_TIME_FILE, when set, receives the
# analysis wall time in ms so check.sh can enforce its perf budget. A
# machine-readable report (every diagnostic incl. blame chains, empty array
# when clean) is always written to results/lint.json.
# Usage: scripts/lint.sh [--json] [--baseline <file>]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: clonos-lint (per-file + call-graph + lockgraph + causal) =="
cargo build --release -q -p clonos-lint
mkdir -p results
errfile=$(mktemp)
status=0
target/release/clonos-lint --emit-spec results/causal_spec.json "$@" 2>"$errfile" || status=$?
cat "$errfile" >&2
ms=$(sed -n 's/.* in \([0-9][0-9]*\) ms$/\1/p' "$errfile" | head -n1)
causal=$(sed -n 's/^clonos-lint: \(lockgraph pass .*\)$/\1/p' "$errfile" | head -n1)
rm -f "$errfile"
if [[ -n "${ms:-}" ]]; then
  echo "== lint: call-graph analysis wall time: ${ms} ms =="
  if [[ -n "${causal:-}" ]]; then
    echo "== lint: per-pass timing: ${causal} =="
  fi
  if [[ -n "${LINT_TIME_FILE:-}" ]]; then
    echo "$ms" >"$LINT_TIME_FILE"
  fi
fi
if [[ ! -s results/causal_spec.json ]]; then
  echo "ERROR: causal spec results/causal_spec.json missing or empty" >&2
  exit 1
fi
echo "== lint: causal spec published to results/causal_spec.json =="

# JSON artifact for CI / downstream tooling (never gates; the exit status
# above does). Re-runs the analysis in --json mode only if the user didn't
# already ask for JSON on stdout.
mkdir -p results
target/release/clonos-lint --json >results/lint.json 2>/dev/null || true
echo "== lint: JSON report written to results/lint.json =="

if [[ "$status" -ne 0 ]]; then
  exit "$status"
fi

echo "== lint: clippy (deny warnings, disallow lists from clippy.toml) =="
cargo clippy --all-targets -- -D warnings

echo "== lint OK =="
