#!/usr/bin/env bash
# Static-analysis gate: clonos-lint (determinism + recovery-path + protocol
# invariants) followed by a warning-free clippy pass with the clippy.toml
# disallow lists. Blocking: any violation exits non-zero.
# Usage: scripts/lint.sh [--json]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: clonos-lint =="
cargo run --release -q -p clonos-lint -- "$@"

echo "== lint: clippy (deny warnings, disallow lists from clippy.toml) =="
cargo clippy --all-targets -- -D warnings

echo "== lint OK =="
